"""Deterministic random-number utilities.

Every stochastic component in this library accepts either a seed or a
ready-made :class:`numpy.random.Generator`.  Experiments need *independent*
streams per network instance and per algorithm run; we derive those with
:class:`numpy.random.SeedSequence` spawning, which guarantees statistically
independent child streams from a single master seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a sequence of
    integers, a :class:`~numpy.random.SeedSequence` or an existing
    generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_seeds(seed: SeedLike, count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` independent seed sequences from ``seed``.

    If ``seed`` is already a generator its bit-generator's seed sequence is
    reused, so spawning from the same generator object twice yields
    *different* children (the generator tracks spawn state).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return list(seq.spawn(count))


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from ``seed``."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, count)]


def random_round(value: float, rng: np.random.Generator) -> int:
    """Round ``value`` to an integer, stochastically on the fractional part.

    Used by stochastic-remainder selection: ``2.3`` becomes ``3`` with
    probability ``0.3`` and ``2`` otherwise, keeping expectation exact.
    """
    base = int(np.floor(value))
    frac = value - base
    if frac > 0.0 and rng.random() < frac:
        return base + 1
    return base


def weighted_choice(weights: np.ndarray, rng: np.random.Generator) -> int:
    """Roulette-wheel pick of an index proportionally to ``weights``.

    Falls back to a uniform pick when every weight is zero (an empty wheel
    would otherwise be a division by zero).
    """
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = float(weights.sum())
    if total <= 0.0:
        return int(rng.integers(weights.size))
    return int(rng.choice(weights.size, p=weights / total))


__all__ = [
    "SeedLike",
    "as_generator",
    "spawn_seeds",
    "spawn_generators",
    "random_round",
    "weighted_choice",
]
