"""A deterministic sampling profiler over the tracer's span stack.

Wall-clock profilers (``cProfile``, ``py-spy``) perturb the runs they
measure and never produce the same profile twice.  This profiler is
**deterministic**: instrumented call sites report *progress* — one
:func:`~DeterministicProfiler.tick` per simulator event, per GA
generation, per batched kernel evaluation — and every
``sample_every``-th tick captures the stack of currently-open tracer
spans.  No clock is read anywhere, so two identical seeded runs produce
bit-identical profiles, and a profile diff between two commits shows
*algorithmic* shifts (more generations spent here, fewer kernel calls
there) rather than scheduler noise.

Sample weights are tick counts.  Attribution therefore follows the
progress units the call sites emit, not seconds — the right currency for
a reproduction whose claims are about work done, with the span names
(``gra.generation``, ``cost.batch``, ``sim.run``) tying each stack back
to the trace tree that ``repro trace`` summarises.

Profiles export as collapsed stacks (``outer;inner count`` — Brendan
Gregg's flamegraph.pl / speedscope both read it) or as `speedscope
<https://www.speedscope.app/>`_ JSON (``evented: false`` sampled
profile).

A process-wide profiler is installed with
:func:`enable_global_profiling` (the CLI ``--profile`` flag does this);
call sites fetch it via :func:`current_profiler`, which returns a shared
*disabled* profiler when profiling is off, so hot paths pay one global
load plus one ``enabled`` check.  Enabling the profiler also enables
global tracing — the span stack is what gets sampled — but does not by
itself write any trace file.
"""

from __future__ import annotations

import json
from typing import Dict, IO, List, Optional, Tuple

from repro.errors import ValidationError
from repro.utils.tracing import Tracer, current_tracer

#: export formats accepted by :meth:`DeterministicProfiler.write`
FORMAT_COLLAPSED = "collapsed"
FORMAT_SPEEDSCOPE = "speedscope"
PROFILE_FORMATS = (FORMAT_COLLAPSED, FORMAT_SPEEDSCOPE)

#: stack recorded when no span is open at a sampled tick
IDLE_FRAME = "(no open span)"

Stack = Tuple[str, ...]


class DeterministicProfiler:
    """Sampled stacks keyed on progress counts, never on wall-clock.

    >>> from repro.utils.tracing import Tracer
    >>> tracer = Tracer()
    >>> profiler = DeterministicProfiler(sample_every=1, tracer=tracer)
    >>> with tracer.span("outer"):
    ...     with tracer.span("inner"):
    ...         profiler.tick()
    >>> profiler.collapsed()
    'outer;inner 1'

    Parameters
    ----------
    sample_every:
        Capture one stack sample per this many ticks (1 = every tick).
        Sampling is an exact decimation of the tick stream, so the
        profile is a deterministic function of the run.
    tracer:
        Span-stack source; defaults to the process-wide tracer at each
        tick (so a profiler created before ``--trace`` still sees spans).
    """

    def __init__(
        self,
        sample_every: int = 1,
        enabled: bool = True,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if sample_every < 1:
            raise ValidationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.enabled = enabled
        self.sample_every = sample_every
        self._tracer = tracer
        self.ticks = 0
        self.samples = 0
        self._stacks: Dict[Stack, int] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def tick(self, count: int = 1) -> None:
        """Report ``count`` units of progress from the calling site.

        Capture happens whenever the cumulative tick counter crosses a
        multiple of ``sample_every``; a coarse-grained site passing
        ``count > sample_every`` contributes proportionally many samples
        of its current stack.
        """
        if not self.enabled:
            return
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        before = self.ticks
        self.ticks = before + count
        crossings = (
            self.ticks // self.sample_every - before // self.sample_every
        )
        if crossings:
            tracer = (
                self._tracer if self._tracer is not None else current_tracer()
            )
            stack = tracer.open_span_names() or (IDLE_FRAME,)
            self._stacks[stack] = self._stacks.get(stack, 0) + crossings
            self.samples += crossings

    def reset(self) -> None:
        self.ticks = 0
        self.samples = 0
        self._stacks.clear()

    # ------------------------------------------------------------------ #
    # access / export
    # ------------------------------------------------------------------ #
    def stacks(self) -> Dict[Stack, int]:
        """A copy of the sampled ``stack -> weight`` table."""
        return dict(self._stacks)

    def self_weights(self) -> Dict[str, int]:
        """Per-frame self weight: samples whose *leaf* is that frame.

        This is the profiler's analogue of the trace summary's
        self-time ranking — the leaf of a sampled stack is where the
        progress unit was spent.
        """
        weights: Dict[str, int] = {}
        for stack, count in self._stacks.items():
            leaf = stack[-1]
            weights[leaf] = weights.get(leaf, 0) + count
        return weights

    def collapsed(self) -> str:
        """Collapsed-stack text: one ``a;b;c weight`` line per stack.

        Lines are sorted lexicographically by stack, so two identical
        runs produce byte-identical output (the determinism test diffs
        exactly this).
        """
        return "\n".join(
            f"{';'.join(stack)} {count}"
            for stack, count in sorted(self._stacks.items())
        )

    def speedscope(self, name: str = "repro profile") -> Dict[str, object]:
        """The profile as a speedscope ``sampled`` document (a dict).

        Frames are deduplicated into the shared frame table in first-
        sorted-appearance order; weights are tick counts (the ``units``
        field says so instead of pretending they are seconds).
        """
        frames: List[Dict[str, object]] = []
        frame_index: Dict[str, int] = {}
        samples: List[List[int]] = []
        weights: List[int] = []
        for stack, count in sorted(self._stacks.items()):
            indexed = []
            for frame in stack:
                if frame not in frame_index:
                    frame_index[frame] = len(frames)
                    frames.append({"name": frame})
                indexed.append(frame_index[frame])
            samples.append(indexed)
            weights.append(count)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
            "name": name,
            "exporter": "repro-deterministic-profiler",
        }

    def write(self, path: str, format: str = FORMAT_COLLAPSED) -> str:
        """Write the profile to ``path`` in ``format``; returns the path."""
        if format not in PROFILE_FORMATS:
            raise ValidationError(
                f"profile format must be one of {PROFILE_FORMATS}, "
                f"got {format!r}"
            )
        with open(path, "w", encoding="utf-8") as fp:
            if format == FORMAT_SPEEDSCOPE:
                json.dump(self.speedscope(name=path), fp, sort_keys=True)
            else:
                self._write_collapsed(fp)
        return path

    def _write_collapsed(self, fp: IO[str]) -> None:
        text = self.collapsed()
        fp.write(text)
        if text:
            fp.write("\n")

    def render(self, top: int = 10) -> str:
        """A terminal block: sample totals plus the top leaf frames."""
        lines = [
            f"profile: {self.samples:,} samples over {self.ticks:,} ticks "
            f"(1 per {self.sample_every})"
        ]
        ranked = sorted(
            self.self_weights().items(), key=lambda item: (-item[1], item[0])
        )
        for frame, weight in ranked[:top]:
            share = 100.0 * weight / self.samples if self.samples else 0.0
            lines.append(f"  {frame}: {weight:,} samples ({share:.1f}%)")
        if len(lines) == 1:
            lines.append("  (no samples recorded)")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# optional process-wide profiler (CLI --profile)
# --------------------------------------------------------------------- #
_GLOBAL: Optional[DeterministicProfiler] = None
_DISABLED = DeterministicProfiler(enabled=False)


def enable_global_profiling(
    sample_every: int = 1,
) -> DeterministicProfiler:
    """Install (or return the existing) process-wide profiler.

    The profiler samples the tracer's open-span stack, so global tracing
    must be enabled for stacks to be non-trivial; the runtime layer
    (:class:`repro.runtime.context.RunContext`) brings the tracer up
    alongside the profiler — this function mutates only its own global.
    """
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = DeterministicProfiler(sample_every=sample_every)
    return _GLOBAL


def global_profiler() -> Optional[DeterministicProfiler]:
    """The process-wide profiler, or ``None`` when profiling is off."""
    return _GLOBAL


def disable_global_profiling() -> None:
    """Remove the process-wide profiler (tests, CLI teardown)."""
    global _GLOBAL
    _GLOBAL = None


def current_profiler() -> DeterministicProfiler:
    """The global profiler, or a shared disabled one when profiling is off.

    Mirrors :func:`repro.utils.tracing.current_tracer`: the disabled
    path costs one global load plus one ``enabled`` check.
    """
    return _GLOBAL if _GLOBAL is not None else _DISABLED


__all__ = [
    "FORMAT_COLLAPSED",
    "FORMAT_SPEEDSCOPE",
    "PROFILE_FORMATS",
    "IDLE_FRAME",
    "DeterministicProfiler",
    "enable_global_profiling",
    "global_profiler",
    "disable_global_profiling",
    "current_profiler",
]
