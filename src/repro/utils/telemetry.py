"""Exportable telemetry: the registry's numbers as first-class signals.

:mod:`repro.utils.metrics` accumulates counters/timers/histograms in
process; :mod:`repro.utils.tracing` records *when* things happened.
This module turns both into signals another system can consume:

* a :class:`TelemetrySink` holds labelled **gauges** (per-site NTC,
  event-queue depth, per-epoch savings — values that go up *and* down)
  next to an optional :class:`~repro.utils.metrics.MetricsRegistry`,
  and snapshots the combined state on demand;
* pluggable **exporters** receive each snapshot: :class:`JsonlExporter`
  appends one JSON line per snapshot (a cross-run time series),
  :class:`OpenMetricsExporter` writes the latest state in the
  OpenMetrics v1 text exposition format (scrapeable by Prometheus and
  anything speaking that format), and :class:`InMemoryExporter` keeps
  snapshots in a list for tests;
* :func:`render_openmetrics` / :func:`parse_openmetrics` round-trip the
  exposition text, so an export can be validated byte for byte.

Like the tracer, a process-wide sink is installed with
:func:`enable_global_telemetry` (the CLI ``--openmetrics`` /
``--telemetry`` flags do this); instrumented call sites fetch it via
:func:`current_sink`, which hands back a shared *disabled* sink when
telemetry is off — the hot paths pay one global load plus one ``enabled``
check and nothing else.

Metric naming
-------------
Gauge names use OpenMetrics-safe characters (``[a-zA-Z0-9_:]``), e.g.
``repro_sim_queue_depth``.  Registry counter/timer/histogram names (which
use dots, e.g. ``cost.cache_hits``) are sanitised on export:
``cost.cache_hits`` becomes ``repro_cost_cache_hits``.  Labels are plain
string pairs; per-site gauges carry ``{site="3"}``.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, IO, List, Optional, Tuple

from repro.errors import ValidationError
from repro.utils.metrics import Histogram, MetricsRegistry

#: snapshot schema version carried in every JSONL line
SNAPSHOT_VERSION = 1

#: prefix prepended to every exported metric family name
METRIC_PREFIX = "repro_"

#: labels are rendered sorted by key, so exports are deterministic
LabelSet = Tuple[Tuple[str, str], ...]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map an internal dotted name onto the OpenMetrics charset.

    >>> sanitize_metric_name("cost.cache_hits")
    'repro_cost_cache_hits'
    >>> sanitize_metric_name("repro_sim_queue_depth")
    'repro_sim_queue_depth'
    """
    cleaned = _SANITIZE.sub("_", name)
    if not cleaned.startswith(METRIC_PREFIX):
        cleaned = METRIC_PREFIX + cleaned
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned  # leading digit after the prefix; be safe
    return cleaned


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class InMemoryExporter:
    """Keeps every exported snapshot in a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.snapshots: List[Dict[str, object]] = []

    def export(self, snapshot: Dict[str, object]) -> None:
        self.snapshots.append(snapshot)

    def close(self) -> None:  # symmetrical with the file exporters
        pass


class JsonlExporter:
    """Appends one JSON line per snapshot — a durable time series.

    Lines are self-describing (``version``/``sequence``/``tick``) and
    key-sorted, so two identical runs produce byte-identical files and
    cross-run diffs stay readable.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fp: Optional[IO[str]] = open(path, "a", encoding="utf-8")

    def export(self, snapshot: Dict[str, object]) -> None:
        if self._fp is None:
            raise ValidationError(f"exporter for {self.path} is closed")
        self._fp.write(json.dumps(snapshot, sort_keys=True) + "\n")
        self._fp.flush()

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None


class OpenMetricsExporter:
    """Writes the *latest* snapshot as OpenMetrics text on every export.

    The exposition format is point-in-time, so the file always holds the
    most recent state (atomically rewritten), ending with ``# EOF`` as
    the spec requires.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    def export(self, snapshot: Dict[str, object]) -> None:
        with open(self.path, "w", encoding="utf-8") as fp:
            fp.write(render_openmetrics_snapshot(snapshot))

    def close(self) -> None:
        pass


class TelemetrySink:
    """Labelled gauges plus registry snapshots, fanned out to exporters.

    >>> sink = TelemetrySink()
    >>> sink.set_gauge("repro_sim_queue_depth", 17)
    >>> sink.observe_gauge("repro_sim_ntc_by_site", 3.5, site=2)
    >>> snap = sink.snapshot(tick=0)
    >>> snap["gauges"]["repro_sim_queue_depth"][0]["value"]
    17.0

    ``enabled=False`` turns every method into a no-op; the shared
    disabled sink returned by :func:`current_sink` is how instrumented
    hot paths stay zero-cost when telemetry is off.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = enabled
        self.registry = registry
        self._gauges: Dict[str, Dict[LabelSet, float]] = {}
        self._exporters: List[object] = []
        self._sequence = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge ``name`` (with ``labels``) to ``value``."""
        if not self.enabled:
            return
        series = self._gauges.setdefault(name, {})
        series[_labelset(labels)] = float(value)

    def observe_gauge(
        self, name: str, value: float, **labels: object
    ) -> None:
        """Alias of :meth:`set_gauge` (reads better at some call sites)."""
        self.set_gauge(name, value, **labels)

    def add_to_gauge(self, name: str, delta: float, **labels: object) -> None:
        """Add ``delta`` to gauge ``name`` (missing series start at 0)."""
        if not self.enabled:
            return
        series = self._gauges.setdefault(name, {})
        key = _labelset(labels)
        series[key] = series.get(key, 0.0) + float(delta)

    def attach_exporter(self, exporter: object) -> object:
        """Register an exporter; returns it for chaining."""
        self._exporters.append(exporter)
        return exporter

    @property
    def exporters(self) -> List[object]:
        return list(self._exporters)

    # ------------------------------------------------------------------ #
    # snapshots / export
    # ------------------------------------------------------------------ #
    def snapshot(self, tick: Optional[float] = None) -> Dict[str, object]:
        """Capture gauges plus the attached registry as one snapshot.

        ``tick`` is a caller-supplied *logical* timestamp (epoch index,
        events processed, ...) — never wall-clock, so identical runs
        yield identical snapshot streams.
        """
        gauges: Dict[str, List[Dict[str, object]]] = {}
        for name in sorted(self._gauges):
            gauges[name] = [
                {"labels": dict(labelset), "value": value}
                for labelset, value in sorted(self._gauges[name].items())
            ]
        snap: Dict[str, object] = {
            "version": SNAPSHOT_VERSION,
            "sequence": self._sequence,
            "tick": tick,
            "gauges": gauges,
        }
        if self.registry is not None:
            snap["metrics"] = self.registry.snapshot()
        self._sequence += 1
        for exporter in self._exporters:
            exporter.export(snap)
        return snap

    def render_openmetrics(self) -> str:
        """The current state as OpenMetrics v1 exposition text."""
        return render_openmetrics_snapshot(self._peek())

    def _peek(self) -> Dict[str, object]:
        """A snapshot that neither bumps the sequence nor exports."""
        sequence = self._sequence
        exporters = self._exporters
        self._exporters = []
        try:
            snap = self.snapshot()
        finally:
            self._exporters = exporters
            self._sequence = sequence
        return snap

    def close(self) -> None:
        """Close every attached exporter (flushes file-backed ones)."""
        for exporter in self._exporters:
            exporter.close()

    def reset(self) -> None:
        self._gauges.clear()
        self._sequence = 0


# --------------------------------------------------------------------- #
# OpenMetrics rendering / parsing
# --------------------------------------------------------------------- #
def _fmt_value(value: float) -> str:
    """A float rendered so that parsing it back is exact (repr round-trip)."""
    if value != value:
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample(name: str, labels: LabelSet, value: float) -> str:
    if labels:
        body = ",".join(
            f'{key}="{_escape_label(val)}"' for key, val in labels
        )
        return f"{name}{{{body}}} {_fmt_value(value)}"
    return f"{name} {_fmt_value(value)}"


def snapshot_families(
    snapshot: Dict[str, object],
) -> "Dict[str, Dict[str, object]]":
    """Flatten a sink snapshot into OpenMetrics metric families.

    Returns ``{family_name: {"type": ..., "samples": {(suffix, labels):
    value}}}`` — the canonical structure both the renderer and the
    parser produce, which is what makes the round-trip testable.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family(name: str, kind: str) -> Dict[Tuple[str, LabelSet], float]:
        entry = families.setdefault(name, {"type": kind, "samples": {}})
        return entry["samples"]  # type: ignore[return-value]

    for name, series in dict(snapshot.get("gauges", {})).items():
        samples = family(sanitize_metric_name(name), "gauge")
        for point in series:
            samples[("", _labelset(point.get("labels", {})))] = float(
                point["value"]
            )

    metrics = dict(snapshot.get("metrics", {}) or {})
    for name, value in dict(metrics.get("counters", {})).items():
        samples = family(sanitize_metric_name(name), "counter")
        samples[("_total", ())] = float(value)
    for name, entry in dict(metrics.get("timers", {})).items():
        base = sanitize_metric_name(name) + "_seconds"
        samples = family(base, "summary")
        samples[("_count", ())] = float(entry.get("calls", 0))
        samples[("_sum", ())] = float(entry.get("total_seconds", 0.0))
    for name, data in dict(metrics.get("histograms", {})).items():
        hist = Histogram.from_dict(data)
        base = sanitize_metric_name(name)
        samples = family(base, "histogram")
        cumulative = hist.zero_count
        if cumulative:
            samples[("_bucket", (("le", _fmt_value(hist.MIN_BOUND)),))] = (
                float(cumulative)
            )
        # Keys may be ints (live snapshot) or strings (JSON round-trip);
        # normalise before sorting so cumulative counts stay monotone.
        buckets = {
            int(idx): int(count)
            for idx, count in dict(data.get("buckets", {})).items()
        }
        for idx in sorted(buckets):
            cumulative += buckets[idx]
            upper = hist.MIN_BOUND * hist.GROWTH ** (idx + 1)
            samples[("_bucket", (("le", _fmt_value(upper)),))] = float(
                cumulative
            )
        samples[("_bucket", (("le", "+Inf"),))] = float(hist.count)
        samples[("_count", ())] = float(hist.count)
        samples[("_sum", ())] = float(hist.total)
    return families


def _sample_order(
    item: Tuple[Tuple[str, LabelSet], float]
) -> Tuple[str, float, LabelSet]:
    """Deterministic sample ordering that also satisfies the spec.

    Histogram ``_bucket`` samples must appear in increasing numeric
    ``le`` order (a plain string sort would put ``+Inf`` *first*);
    everything else orders by suffix then labels.
    """
    (suffix, labels), _ = item
    if suffix == "_bucket":
        le = dict(labels).get("le")
        if le is not None:
            return (suffix, _parse_value(le), labels)
    return (suffix, 0.0, labels)


def render_families(families: Dict[str, Dict[str, object]]) -> str:
    """Metric families as OpenMetrics v1 text (``# EOF``-terminated)."""
    lines: List[str] = []
    for name in sorted(families):
        entry = families[name]
        lines.append(f"# TYPE {name} {entry['type']}")
        samples: Dict[Tuple[str, LabelSet], float] = entry[
            "samples"
        ]  # type: ignore[assignment]
        for (suffix, labels), value in sorted(
            samples.items(), key=_sample_order
        ):
            lines.append(_sample(name + suffix, labels, value))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def render_openmetrics_snapshot(snapshot: Dict[str, object]) -> str:
    """One sink snapshot as OpenMetrics v1 exposition text."""
    return render_families(snapshot_families(snapshot))


_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: .*)?$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_SUFFIXES = ("_bucket", "_total", "_count", "_sum")


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def parse_openmetrics(text: str) -> Dict[str, Dict[str, object]]:
    """Parse OpenMetrics v1 text back into metric families.

    Inverse of :func:`render_families` over everything the renderer
    emits (``render_families(parse_openmetrics(text)) == text`` for any
    ``text`` the sink produced).  Raises
    :class:`~repro.errors.ValidationError` on malformed input: samples
    before their ``# TYPE`` line, unknown names, a missing ``# EOF``
    terminator, or an unparsable sample line.
    """
    families: Dict[str, Dict[str, object]] = {}
    saw_eof = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if saw_eof:
            raise ValidationError(
                f"line {lineno}: content after the # EOF terminator"
            )
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            try:
                _, _, name, kind = line.split(" ", 3)
            except ValueError:
                raise ValidationError(
                    f"line {lineno}: malformed TYPE line {line!r}"
                ) from None
            families[name] = {"type": kind, "samples": {}}
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT lines: legal, carried by other emitters
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValidationError(
                f"line {lineno}: unparsable sample line {line!r}"
            )
        sample_name = match.group("name")
        family_name, suffix = sample_name, ""
        if family_name not in families:
            for candidate in _SUFFIXES:
                if sample_name.endswith(candidate):
                    family_name = sample_name[: -len(candidate)]
                    suffix = candidate
                    break
        if family_name not in families:
            raise ValidationError(
                f"line {lineno}: sample {sample_name!r} precedes its "
                "# TYPE declaration"
            )
        labels: List[Tuple[str, str]] = []
        if match.group("labels"):
            for key, value in _LABEL_PAIR.findall(match.group("labels")):
                labels.append((key, _unescape_label(value)))
        samples: Dict[Tuple[str, LabelSet], float] = families[family_name][
            "samples"
        ]  # type: ignore[assignment]
        samples[(suffix, tuple(sorted(labels)))] = _parse_value(
            match.group("value")
        )
    if not saw_eof:
        raise ValidationError("missing # EOF terminator")
    return families


def validate_openmetrics(text: str) -> int:
    """Validate exposition text; returns the number of sample lines.

    A thin wrapper over :func:`parse_openmetrics` for callers that only
    want the format check (the CI smoke job, the tests).
    """
    families = parse_openmetrics(text)
    return sum(len(entry["samples"]) for entry in families.values())


# --------------------------------------------------------------------- #
# optional process-wide sink (CLI --openmetrics / --telemetry)
# --------------------------------------------------------------------- #
_GLOBAL: Optional[TelemetrySink] = None
_DISABLED = TelemetrySink(enabled=False)


def enable_global_telemetry(
    registry: Optional[MetricsRegistry] = None,
) -> TelemetrySink:
    """Install (or return the existing) process-wide sink.

    When a sink already exists and ``registry`` is given, the registry is
    attached to it (a later ``--metrics`` flag should not be lost).
    """
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = TelemetrySink(registry=registry)
    elif registry is not None and _GLOBAL.registry is None:
        _GLOBAL.registry = registry
    return _GLOBAL


def global_telemetry() -> Optional[TelemetrySink]:
    """The process-wide sink, or ``None`` when telemetry is off."""
    return _GLOBAL


def disable_global_telemetry() -> None:
    """Remove the process-wide sink (mostly for tests and CLI teardown)."""
    global _GLOBAL
    _GLOBAL = None


def current_sink() -> TelemetrySink:
    """The global sink, or a shared disabled sink when telemetry is off.

    Mirrors :func:`repro.utils.tracing.current_tracer`: the disabled
    path costs one global load plus one ``enabled`` check.
    """
    return _GLOBAL if _GLOBAL is not None else _DISABLED


__all__ = [
    "SNAPSHOT_VERSION",
    "METRIC_PREFIX",
    "TelemetrySink",
    "InMemoryExporter",
    "JsonlExporter",
    "OpenMetricsExporter",
    "sanitize_metric_name",
    "snapshot_families",
    "render_families",
    "render_openmetrics_snapshot",
    "parse_openmetrics",
    "validate_openmetrics",
    "enable_global_telemetry",
    "global_telemetry",
    "disable_global_telemetry",
    "current_sink",
]
