"""Structured tracing: nested spans, point events, bounded recording.

Aggregate metrics (:mod:`repro.utils.metrics`) answer *how much*; this
module answers *when* and *why*.  A :class:`Tracer` records

* **spans** — named intervals with a monotonic start/end, a parent span
  id (spans nest via a per-tracer stack) and arbitrary key-value
  attributes.  The GRA engine opens one span per generation, the cost
  kernel one per batched evaluation, the harness one per task;
* **events** — point-in-time markers attached to the enclosing span
  (SRA placements, AGRA allocate/deallocate decisions, sampled
  simulator progress).

Records land in an in-memory ring buffer of bounded capacity: tracing a
long run costs O(capacity) memory, and once the buffer wraps, the oldest
records are discarded and a ``dropped`` count — plus a per-kind
breakdown keyed by the record name's first dotted segment — is carried
into every export so truncation is never silent.

Traces export as JSONL (one record per line, ``meta`` line first) or as
the Chrome ``trace_event`` JSON format, loadable in Perfetto or
``chrome://tracing``.  :func:`read_trace` loads either format back.

Worker processes record into their own tracers; the parallel harness
ships :meth:`Tracer.snapshot` back over pickle and the parent calls
:meth:`Tracer.merge_snapshot` with a parent span id, which re-parents
the worker's root spans under the parent run and remaps span ids into
the parent's id space deterministically (merge order decides ids, and
the harness merges in task order).

A process-wide tracer is installed with :func:`enable_global_tracing`
(the CLI ``--trace`` flag does this); instrumented call sites fetch it
via :func:`current_tracer`, which returns a shared *disabled* tracer
when tracing is off, so the hot paths pay one attribute check and
nothing else.

Span timestamps are ``time.perf_counter`` deltas re-based onto the wall
clock at tracer creation: monotonic within a process, and comparable
across the processes of one parallel sweep up to OS clock skew.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, IO, Iterable, Iterator, List, Optional, Union

from repro.errors import ValidationError

#: default ring-buffer capacity (records, spans and events combined)
DEFAULT_CAPACITY = 200_000

#: export formats accepted by :meth:`Tracer.write`
FORMAT_JSONL = "jsonl"
FORMAT_CHROME = "chrome"
FORMATS = (FORMAT_JSONL, FORMAT_CHROME)

#: record type tags
SPAN = "span"
EVENT = "event"
META = "meta"

#: a trace record: plain dict, JSON- and pickle-friendly
Record = Dict[str, object]


class _SpanHandle:
    """An open span: context manager handed out by :meth:`Tracer.span`.

    ``set(**attrs)`` attaches attributes while the span is open; the
    record is appended to the ring buffer when the span closes.
    """

    __slots__ = ("_tracer", "id", "parent_id", "name", "attrs", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.id = -1
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set(self, **attrs: object) -> "_SpanHandle":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        self.id = tracer._allocate_id()
        stack = tracer._stack
        self.parent_id = stack[-1].id if stack else None
        stack.append(self)
        self._start = tracer._now()
        return self

    def __exit__(self, *exc_info: object) -> None:
        tracer = self._tracer
        end = tracer._now()
        stack = tracer._stack
        # Tolerate mispaired exits (an inner span leaked by an exception):
        # unwind to and including this span.
        while stack:
            top = stack.pop()
            if top is self:
                break
        tracer._append(
            {
                "type": SPAN,
                "id": self.id,
                "parent": self.parent_id,
                "name": self.name,
                "start": self._start,
                "end": end,
                "pid": tracer.pid,
                "attrs": self.attrs,
            }
        )


class _NullSpan:
    """Shared no-op span used when tracing is disabled."""

    __slots__ = ()
    id = -1
    parent_id = None

    def set(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Nested spans and events in a bounded in-memory ring buffer.

    >>> tracer = Tracer()
    >>> with tracer.span("outer", phase="demo"):
    ...     with tracer.span("inner"):
    ...         tracer.event("tick", n=1)
    >>> [r["name"] for r in tracer.records()]
    ['tick', 'inner', 'outer']

    Spans are recorded when they *close*, so children precede parents in
    the buffer; :func:`build_tree` in :mod:`repro.utils.trace_summary`
    reconstructs the hierarchy from parent ids.
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, enabled: bool = True
    ) -> None:
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.pid = os.getpid()
        self.dropped = 0
        self.dropped_by_kind: Dict[str, int] = {}
        self._buffer: Deque[Record] = deque(maxlen=capacity)
        self._stack: List[_SpanHandle] = []
        self._next_id = 0
        # perf_counter deltas re-based onto the wall clock: monotonic in
        # this process, comparable across the processes of one sweep.
        self._wall0 = time.time()
        self._perf0 = time.perf_counter()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def _now(self) -> float:
        return self._wall0 + (time.perf_counter() - self._perf0)

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _append(self, record: Record) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
            kind = _record_kind(self._buffer[0])
            self.dropped_by_kind[kind] = self.dropped_by_kind.get(kind, 0) + 1
        self._buffer.append(record)

    def span(self, name: str, **attrs: object):
        """Open a nested span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs: object) -> None:
        """Record a point-in-time event under the current span."""
        if not self.enabled:
            return
        stack = self._stack
        self._append(
            {
                "type": EVENT,
                "id": self._allocate_id(),
                "parent": stack[-1].id if stack else None,
                "name": name,
                "time": self._now(),
                "pid": self.pid,
                "attrs": attrs,
            }
        )

    @property
    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span, if any."""
        return self._stack[-1].id if self._stack else None

    def open_span_names(self) -> "tuple[str, ...]":
        """Names of the currently open spans, outermost first.

        The deterministic profiler samples this stack: names carry no
        ids or timestamps, so identical runs yield identical stacks.
        """
        return tuple(handle.name for handle in self._stack)

    # ------------------------------------------------------------------ #
    # access / aggregation
    # ------------------------------------------------------------------ #
    def records(self) -> List[Record]:
        """A copy of the buffered records, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    def reset(self) -> None:
        self._buffer.clear()
        self._stack.clear()
        self.dropped = 0
        self.dropped_by_kind = {}
        self._next_id = 0

    def snapshot(self) -> Record:
        """A picklable copy of the buffer (how workers ship traces back)."""
        return {
            "records": [dict(r) for r in self._buffer],
            "dropped": self.dropped,
            "dropped_by_kind": dict(self.dropped_by_kind),
            "pid": self.pid,
        }

    def merge_snapshot(
        self,
        snapshot: Record,
        parent_id: Optional[int] = None,
    ) -> Dict[int, int]:
        """Fold a worker's :meth:`snapshot` into this tracer.

        Worker span/event ids are remapped into this tracer's id space
        (allocation follows record order, so merging the same snapshots
        in the same order yields the same ids), and records whose parent
        is unknown — the worker's root spans — are re-parented under
        ``parent_id``.  Returns the id remap table.
        """
        remap: Dict[int, int] = {}
        records = [dict(record) for record in snapshot.get("records", [])]
        # Two passes: spans close child-before-parent, so a child record
        # precedes its parent in the buffer — every id must be allocated
        # before any parent link can be resolved.
        for record in records:
            old_id = record.get("id")
            if isinstance(old_id, int):
                remap[old_id] = record["id"] = self._allocate_id()
        for record in records:
            parent = record.get("parent")
            if isinstance(parent, int) and parent in remap:
                record["parent"] = remap[parent]
            else:
                # root (or truncated-away parent): hang under parent_id
                record["parent"] = parent_id
            self._append(record)
        self.dropped += int(snapshot.get("dropped", 0))
        for kind, count in (snapshot.get("dropped_by_kind") or {}).items():
            self.dropped_by_kind[kind] = (
                self.dropped_by_kind.get(kind, 0) + int(count)
            )
        return remap

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def _meta(self) -> Record:
        return {
            "type": META,
            "version": 1,
            "pid": self.pid,
            "records": len(self._buffer),
            "dropped": self.dropped,
            "dropped_by_kind": dict(self.dropped_by_kind),
        }

    def write_jsonl(self, fp: IO[str]) -> None:
        """One JSON record per line; a ``meta`` line (dropped count) first."""
        fp.write(json.dumps(self._meta()) + "\n")
        for record in self._buffer:
            fp.write(json.dumps(record) + "\n")

    def write_chrome(self, fp: IO[str]) -> None:
        """Chrome ``trace_event`` JSON (Perfetto / ``chrome://tracing``).

        Spans become complete (``ph="X"``) events with microsecond
        timestamps; events become instant (``ph="i"``) events.  The span
        id and parent id ride along in ``args`` (with user attributes
        namespaced under ``args["attrs"]``) so the exact tree — including
        attributes that happen to be named ``id`` or ``parent`` —
        round-trips through :func:`read_trace`.

        Events carrying the reserved ``flow`` / ``flow_phase`` attributes
        (message sends and receives do) additionally emit Chrome flow
        entries (``ph`` in ``s``/``t``/``f``) so hops render as arrows in
        Perfetto; :func:`read_trace` skips those companion entries, the
        ``i`` event already carries the flow attributes.
        """
        entries: List[Record] = []
        flow_ids: Dict[object, int] = {}
        for record in self._buffer:
            entries.append(_record_to_chrome(record))
            flow = _flow_entry(record, flow_ids)
            if flow is not None:
                entries.append(flow)
        json.dump(
            {
                "traceEvents": entries,
                "displayTimeUnit": "ms",
                "otherData": self._meta(),
            },
            fp,
        )

    def write(self, path: str, format: str = FORMAT_JSONL) -> str:
        """Write the trace to ``path`` in ``format``; returns the path."""
        if format not in FORMATS:
            raise ValidationError(
                f"trace format must be one of {FORMATS}, got {format!r}"
            )
        with open(path, "w", encoding="utf-8") as fp:
            if format == FORMAT_CHROME:
                self.write_chrome(fp)
            else:
                self.write_jsonl(fp)
        return path


def _record_kind(record: Record) -> str:
    """Drop-accounting bucket: the record name's first dotted segment."""
    name = str(record.get("name") or "")
    head = name.split(".", 1)[0]
    return head or str(record.get("type", "unknown"))


def _flow_entry(record: Record, flow_ids: Dict[object, int]) -> Optional[Record]:
    """The Chrome flow companion for a ``flow``-attributed event, if any."""
    if record.get("type") != EVENT:
        return None
    attrs = record.get("attrs") or {}
    phase = attrs.get("flow_phase")
    if "flow" not in attrs or phase not in ("s", "t", "f"):
        return None
    key = attrs["flow"]
    flow_id = flow_ids.setdefault(key, len(flow_ids) + 1)
    entry: Record = {
        "name": str(attrs.get("flow_name", record.get("name", "flow"))),
        "cat": "flow",
        "ph": phase,
        "id": flow_id,
        "ts": float(record["time"]) * 1e6,
        "pid": record.get("pid", 0),
        "tid": record.get("pid", 0),
    }
    if phase == "f":
        entry["bp"] = "e"  # bind to the enclosing slice, matching the send
    return entry


def _record_to_chrome(record: Record) -> Record:
    args: Record = {
        "id": record.get("id"),
        "attrs": dict(record.get("attrs") or {}),
    }
    if record.get("parent") is not None:
        args["parent"] = record.get("parent")
    if record["type"] == SPAN:
        start = float(record["start"])
        return {
            "name": record["name"],
            "cat": SPAN,
            "ph": "X",
            "ts": start * 1e6,
            "dur": (float(record["end"]) - start) * 1e6,
            "pid": record.get("pid", 0),
            "tid": record.get("pid", 0),
            "args": args,
        }
    return {
        "name": record["name"],
        "cat": EVENT,
        "ph": "i",
        "s": "t",
        "ts": float(record["time"]) * 1e6,
        "pid": record.get("pid", 0),
        "tid": record.get("pid", 0),
        "args": args,
    }


def _chrome_to_record(entry: Record) -> Optional[Record]:
    args = dict(entry.get("args") or {})
    if isinstance(args.get("attrs"), dict):
        # Current format: metadata flat, user attributes namespaced.
        span_id = args.get("id")
        parent = args.get("parent")
        attrs = dict(args["attrs"])
    else:
        # Legacy format (pre-namespacing): attributes and metadata share
        # one flat dict; attrs named id/parent were clobbered at export,
        # so popping here recovers everything the file still holds.
        span_id = args.pop("id", None)
        parent = args.pop("parent", None)
        attrs = args
    common = {
        "id": span_id,
        "parent": parent,
        "name": entry.get("name", ""),
        "pid": entry.get("pid", 0),
        "attrs": attrs,
    }
    if entry.get("ph") == "X":
        start = float(entry.get("ts", 0.0)) / 1e6
        return {
            "type": SPAN,
            "start": start,
            "end": start + float(entry.get("dur", 0.0)) / 1e6,
            **common,
        }
    if entry.get("ph") == "i":
        return {
            "type": EVENT,
            "time": float(entry.get("ts", 0.0)) / 1e6,
            **common,
        }
    return None  # other phase types (metadata etc.) are not ours


def read_trace(path: str) -> Dict[str, object]:
    """Load a trace file written by :meth:`Tracer.write` (either format).

    Returns ``{"records": [...], "dropped": int, "dropped_by_kind": {...}}``
    with records in the original buffer order.  The format is sniffed
    from the content: a JSON object with ``traceEvents`` is Chrome
    format, anything else is JSONL.
    """
    try:
        with open(path, "r", encoding="utf-8") as fp:
            content = fp.read()
    except FileNotFoundError:
        raise ValidationError(f"no such file: {path}") from None
    stripped = content.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:2000]:
        try:
            data = json.loads(content)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"{path} is not a valid trace file: {exc}"
            ) from None
        records = [
            rec
            for rec in (
                _chrome_to_record(e) for e in data.get("traceEvents", [])
            )
            if rec is not None
        ]
        meta = data.get("otherData") or {}
        return {
            "records": records,
            "dropped": int(meta.get("dropped", 0)),
            "dropped_by_kind": dict(meta.get("dropped_by_kind") or {}),
        }
    records: List[Record] = []
    dropped = 0
    dropped_by_kind: Dict[str, int] = {}
    for line in content.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"{path} is not a valid trace file: {exc}"
            ) from None
        if record.get("type") == META:
            dropped = int(record.get("dropped", 0))
            dropped_by_kind = dict(record.get("dropped_by_kind") or {})
            continue
        records.append(record)
    return {
        "records": records,
        "dropped": dropped,
        "dropped_by_kind": dropped_by_kind,
    }


# --------------------------------------------------------------------- #
# optional process-wide tracer (CLI --trace)
# --------------------------------------------------------------------- #
_GLOBAL: Optional[Tracer] = None
_DISABLED = Tracer(capacity=1, enabled=False)


def enable_global_tracing(capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Install (or return the existing) process-wide tracer."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = Tracer(capacity=capacity)
    return _GLOBAL


def global_tracer() -> Optional[Tracer]:
    """The process-wide tracer, or ``None`` when tracing is off."""
    return _GLOBAL


def disable_global_tracing() -> None:
    """Remove the process-wide tracer (workers do this between tasks)."""
    global _GLOBAL
    _GLOBAL = None


def current_tracer() -> Tracer:
    """The global tracer, or a shared disabled tracer when tracing is off.

    Instrumented call sites use this so the disabled path costs one
    global load plus one ``enabled`` check — no allocation, no branches
    in the caller.
    """
    return _GLOBAL if _GLOBAL is not None else _DISABLED


@contextmanager
def temporary_tracer(capacity: int = DEFAULT_CAPACITY) -> Iterator[Tracer]:
    """Install a fresh process-wide tracer for the duration of a block.

    Whatever tracer was installed before (including none) is restored on
    exit, even when the body raises.  The conformance oracle uses this to
    observe instrumentation events (``sra.place`` benefits) without
    clobbering a ``--trace`` session the caller may be running.
    """
    global _GLOBAL
    previous = _GLOBAL
    tracer = Tracer(capacity=capacity)
    _GLOBAL = tracer
    try:
        yield tracer
    finally:
        _GLOBAL = previous


__all__ = [
    "DEFAULT_CAPACITY",
    "FORMAT_JSONL",
    "FORMAT_CHROME",
    "FORMATS",
    "SPAN",
    "EVENT",
    "META",
    "Record",
    "Tracer",
    "read_trace",
    "enable_global_tracing",
    "global_tracer",
    "disable_global_tracing",
    "current_tracer",
    "temporary_tracer",
]
