"""Lightweight runtime metrics: counters, timers and histograms.

The experiment harness and the cost kernel are instrumented with a
:class:`MetricsRegistry` — a plain in-process collection of named
counters, accumulating timers and distribution histograms:

* a **counter** is an integer bumped with :meth:`MetricsRegistry.increment`
  (cache hits/misses, evaluation counts);
* a **timer** accumulates wall-clock seconds, either via
  :meth:`MetricsRegistry.observe` or the :class:`Timer` context manager
  returned by :meth:`MetricsRegistry.timer`;
* a **histogram** (:class:`Histogram`) records a value distribution in
  fixed log-scale buckets (bounded memory regardless of sample count)
  and reports p50/p95/p99/max; the simulator's read/write latencies go
  through these.

Registries are cheap to create, picklable through :meth:`snapshot` /
:meth:`merge_snapshot` (how the process-pool harness ships worker
metrics back to the parent — histograms merge bucket-wise, exactly like
counters), and render as an aligned terminal table.

A process-wide default registry can be installed with
:func:`enable_global_metrics`; the experiment harness consults it so a
single ``--metrics`` flag instruments every nested run without threading
a registry through every call site.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Optional

#: snapshot type: {"counters": {...}, "timers": {name: {"calls", "total_seconds", "max_seconds"}}, "histograms": {name: {...}}}
Snapshot = Dict[str, Dict[str, object]]


class Timer:
    """Context manager that adds its elapsed wall-clock to one timer."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._registry.observe(
                self._name, time.perf_counter() - self._start
            )
            self._start = None


class _NullTimer:
    """No-op stand-in used when a registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_TIMER = _NullTimer()


class Histogram:
    """Log-scale bucketed value distribution with bounded memory.

    Buckets are geometric: bucket ``i`` holds values in
    ``[MIN_BOUND * GROWTH**i, MIN_BOUND * GROWTH**(i+1))`` with
    ``GROWTH = 2**0.25`` (four buckets per octave, ~9% worst-case
    relative error on a percentile).  Values at or below ``MIN_BOUND``
    (including exact zeros, e.g. local-read latencies) land in a
    dedicated zero bucket.  Counts are kept sparsely, so an empty or
    narrow distribution costs a handful of dict entries.

    ``count``/``total``/``min``/``max`` are exact; :meth:`mean` is exact;
    :meth:`percentile` is bucket-resolution approximate, clamped to the
    observed min/max.  Two histograms recorded independently and merged
    with :meth:`merge` are bucket-identical to one histogram fed both
    streams — that is what lets the parallel harness merge worker
    latency distributions without shipping raw samples.

    >>> h = Histogram()
    >>> for v in (1.0, 2.0, 3.0):
    ...     h.record(v)
    >>> h.count, round(h.mean(), 3)
    (3, 2.0)
    >>> 1.8 < h.percentile(50.0) < 2.2
    True
    """

    #: growth factor between bucket bounds (4 buckets per factor of 2)
    GROWTH = 2.0 ** 0.25
    #: lower bound of bucket 0; values <= this are "zero"
    MIN_BOUND = 1e-9
    #: number of geometric buckets (covers MIN_BOUND .. ~5e12)
    NUM_BUCKETS = 288

    __slots__ = (
        "count", "total", "min", "max", "zero_count", "_buckets", "_memo"
    )

    _LOG_GROWTH = math.log(GROWTH)
    _LOG_MIN = math.log(MIN_BOUND)
    #: bound on the value -> bucket memo (distinct values seen)
    _MEMO_LIMIT = 4096

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.zero_count = 0
        self._buckets: Dict[int, int] = {}
        # Recorded values tend to come from a small discrete set (e.g.
        # simulator latencies = size x unit-cost combinations), so a
        # bounded value->bucket memo replaces the log() on the hot path.
        self._memo: Dict[float, int] = {}

    def _index(self, value: float) -> int:
        idx = int((math.log(value) - self._LOG_MIN) / self._LOG_GROWTH)
        return min(max(idx, 0), self.NUM_BUCKETS - 1)

    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value``.

        Non-finite values are rejected *before* any state mutation: the
        old behaviour let ``inf``/``NaN`` bump ``count``/``total`` and
        then blow up in the bucket math (``OverflowError`` /
        ``ValueError``), leaving the histogram corrupted — ``mean()``
        and ``percentile()`` disagreeing with the bucket contents.
        """
        value = float(value)
        if not math.isfinite(value):
            raise ValueError(
                f"histogram values must be finite, got {value}"
            )
        self.count += count
        self.total += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.MIN_BOUND:
            self.zero_count += count
            return
        memo = self._memo
        idx = memo.get(value)
        if idx is None:
            idx = self._index(value)
            if len(memo) < self._MEMO_LIMIT:
                memo[value] = idx
        self._buckets[idx] = self._buckets.get(idx, 0) + count

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (bucket midpoint, clamped).

        Accuracy is bounded by the bucket growth factor: the returned
        value is within ~9% of the true percentile.
        """
        if self.count == 0:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must lie in [0, 100], got {q}")
        # nearest-rank over the bucketed distribution
        rank = max(1, math.ceil(q / 100.0 * self.count))
        seen = self.zero_count
        if rank <= seen:
            return max(0.0, self.min)
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if rank <= seen:
                midpoint = self.MIN_BOUND * self.GROWTH ** (idx + 0.5)
                return min(max(midpoint, self.min), self.max)
        return self.max

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` into this histogram (bucket-wise addition)."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.zero_count += other.zero_count
        for idx, count in other._buckets.items():
            self._buckets[idx] = self._buckets.get(idx, 0) + count

    # ---------------------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        """A picklable/JSON-able snapshot of the histogram state."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "zero_count": self.zero_count,
            "buckets": dict(self._buckets),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        hist = cls()
        hist.count = int(data.get("count", 0))
        hist.total = float(data.get("total", 0.0))
        minimum = data.get("min")
        maximum = data.get("max")
        hist.min = math.inf if minimum is None else float(minimum)
        hist.max = -math.inf if maximum is None else float(maximum)
        hist.zero_count = int(data.get("zero_count", 0))
        hist._buckets = {
            int(idx): int(count)
            for idx, count in dict(data.get("buckets", {})).items()
        }
        return hist

    def summary(self, percentiles=(50.0, 95.0, 99.0)) -> Dict[str, float]:
        """count/mean/max plus the requested percentiles as a flat dict."""
        out = {
            "count": float(self.count),
            "mean": self.mean(),
            "max": self.max if self.count else 0.0,
        }
        for q in percentiles:
            out[f"p{q:g}"] = self.percentile(q)
        return out


class MetricsRegistry:
    """Named counters plus accumulating wall-time timers.

    >>> registry = MetricsRegistry()
    >>> registry.increment("cache.hits")
    >>> with registry.timer("solve"):
    ...     pass
    >>> registry.counters["cache.hits"]
    1
    >>> registry.timers["solve"]["calls"]
    1
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, Dict[str, float]] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def increment(self, name: str, value: int = 1) -> None:
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one completed span of ``seconds`` under timer ``name``."""
        if not self.enabled:
            return
        entry = self._timers.get(name)
        if entry is None:
            entry = {"calls": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            self._timers[name] = entry
        entry["calls"] += 1
        entry["total_seconds"] += float(seconds)
        entry["max_seconds"] = max(entry["max_seconds"], float(seconds))

    def timer(self, name: str):
        """A context manager timing one span under ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        return Timer(self, name)

    def observe_value(self, name: str, value: float, count: int = 1) -> None:
        """Record ``value`` into the log-scale histogram ``name``."""
        if not self.enabled:
            return
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.record(value, count)

    def histogram(self, name: str) -> Optional[Histogram]:
        """The named histogram, or ``None`` when nothing was recorded."""
        return self._histograms.get(name)

    # ------------------------------------------------------------------ #
    # access / aggregation
    # ------------------------------------------------------------------ #
    @property
    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    @property
    def timers(self) -> Dict[str, Dict[str, float]]:
        return {name: dict(entry) for name, entry in self._timers.items()}

    @property
    def histograms(self) -> Dict[str, Histogram]:
        return dict(self._histograms)

    def snapshot(self) -> Snapshot:
        """A picklable copy of every counter, timer and histogram.

        Keys are sorted, not insertion-ordered: two runs that record the
        same metrics in a different order (e.g. under different thread
        or sub-process interleavings) must serialise identically, so
        snapshot-derived artifacts — telemetry JSONL lines, OpenMetrics
        exports, ``--metrics`` dumps — diff cleanly across runs.
        """
        return {
            "counters": {
                name: self._counters[name]
                for name in sorted(self._counters)
            },
            "timers": {
                name: dict(self._timers[name])
                for name in sorted(self._timers)
            },
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, snapshot: Snapshot) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the parallel harness: worker processes record into their
        own registries and the parent merges the returned snapshots.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.increment(name, int(value))
        for name, entry in snapshot.get("timers", {}).items():
            mine = self._timers.get(name)
            if mine is None:
                mine = {"calls": 0, "total_seconds": 0.0, "max_seconds": 0.0}
                self._timers[name] = mine
            mine["calls"] += int(entry.get("calls", 0))
            mine["total_seconds"] += float(entry.get("total_seconds", 0.0))
            mine["max_seconds"] = max(
                mine["max_seconds"], float(entry.get("max_seconds", 0.0))
            )
        for name, data in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_dict(data)
            mine_hist = self._histograms.get(name)
            if mine_hist is None:
                self._histograms[name] = incoming
            else:
                mine_hist.merge(incoming)

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()
        self._histograms.clear()

    def render(self, precision: int = 4) -> str:
        """Counters, timers and histograms as an aligned terminal block.

        Rendering never mutates and never raises — a disabled (or simply
        empty) registry renders a stable ``(empty)`` placeholder, so
        callers can print unconditionally.
        """
        lines = ["metrics:"]
        for name in sorted(self._counters):
            lines.append(f"  {name} = {self._counters[name]:,}")
        for name in sorted(self._timers):
            entry = self._timers[name]
            calls = int(entry["calls"])
            mean = entry["total_seconds"] / calls if calls else 0.0
            lines.append(
                f"  {name}: calls={calls:,} "
                f"total={entry['total_seconds']:.{precision}f}s "
                f"mean={mean:.{precision}f}s "
                f"max={entry['max_seconds']:.{precision}f}s"
            )
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            lines.append(
                f"  {name}: count={hist.count:,} "
                f"mean={hist.mean():.{precision}f} "
                f"p50={hist.percentile(50.0):.{precision}f} "
                f"p95={hist.percentile(95.0):.{precision}f} "
                f"p99={hist.percentile(99.0):.{precision}f} "
                f"max={(hist.max if hist.count else 0.0):.{precision}f}"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# optional process-wide registry (CLI --metrics)
# --------------------------------------------------------------------- #
_GLOBAL: Optional[MetricsRegistry] = None


def enable_global_metrics() -> MetricsRegistry:
    """Install (or return the existing) process-wide registry."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = MetricsRegistry()
    return _GLOBAL


def global_metrics() -> Optional[MetricsRegistry]:
    """The process-wide registry, or ``None`` when not enabled."""
    return _GLOBAL


def disable_global_metrics() -> None:
    """Remove the process-wide registry (mostly for tests)."""
    global _GLOBAL
    _GLOBAL = None


__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "Snapshot",
    "enable_global_metrics",
    "global_metrics",
    "disable_global_metrics",
]
