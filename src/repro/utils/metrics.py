"""Lightweight runtime metrics: counters and wall-clock timers.

The experiment harness and the cost kernel are instrumented with a
:class:`MetricsRegistry` — a plain in-process collection of named
counters and accumulating timers.  The registry is deliberately tiny:

* a **counter** is an integer bumped with :meth:`MetricsRegistry.increment`
  (cache hits/misses, evaluation counts);
* a **timer** accumulates wall-clock seconds, either via
  :meth:`MetricsRegistry.observe` or the :class:`Timer` context manager
  returned by :meth:`MetricsRegistry.timer`.

Registries are cheap to create, picklable through :meth:`snapshot` /
:meth:`merge_snapshot` (how the process-pool harness ships worker
metrics back to the parent), and render as an aligned terminal table.

A process-wide default registry can be installed with
:func:`enable_global_metrics`; the experiment harness consults it so a
single ``--metrics`` flag instruments every nested run without threading
a registry through every call site.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

#: snapshot type: {"counters": {...}, "timers": {name: {"calls", "total_seconds", "max_seconds"}}}
Snapshot = Dict[str, Dict[str, object]]


class Timer:
    """Context manager that adds its elapsed wall-clock to one timer."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self._registry.observe(
                self._name, time.perf_counter() - self._start
            )
            self._start = None


class _NullTimer:
    """No-op stand-in used when a registry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_TIMER = _NullTimer()


class MetricsRegistry:
    """Named counters plus accumulating wall-time timers.

    >>> registry = MetricsRegistry()
    >>> registry.increment("cache.hits")
    >>> with registry.timer("solve"):
    ...     pass
    >>> registry.counters["cache.hits"]
    1
    >>> registry.timers["solve"]["calls"]
    1
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, int] = {}
        self._timers: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def increment(self, name: str, value: int = 1) -> None:
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + int(value)

    def observe(self, name: str, seconds: float) -> None:
        """Record one completed span of ``seconds`` under timer ``name``."""
        if not self.enabled:
            return
        entry = self._timers.get(name)
        if entry is None:
            entry = {"calls": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            self._timers[name] = entry
        entry["calls"] += 1
        entry["total_seconds"] += float(seconds)
        entry["max_seconds"] = max(entry["max_seconds"], float(seconds))

    def timer(self, name: str):
        """A context manager timing one span under ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        return Timer(self, name)

    # ------------------------------------------------------------------ #
    # access / aggregation
    # ------------------------------------------------------------------ #
    @property
    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    @property
    def timers(self) -> Dict[str, Dict[str, float]]:
        return {name: dict(entry) for name, entry in self._timers.items()}

    def snapshot(self) -> Snapshot:
        """A picklable copy of every counter and timer."""
        return {"counters": self.counters, "timers": self.timers}

    def merge_snapshot(self, snapshot: Snapshot) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Used by the parallel harness: worker processes record into their
        own registries and the parent merges the returned snapshots.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.increment(name, int(value))
        for name, entry in snapshot.get("timers", {}).items():
            mine = self._timers.get(name)
            if mine is None:
                mine = {"calls": 0, "total_seconds": 0.0, "max_seconds": 0.0}
                self._timers[name] = mine
            mine["calls"] += int(entry.get("calls", 0))
            mine["total_seconds"] += float(entry.get("total_seconds", 0.0))
            mine["max_seconds"] = max(
                mine["max_seconds"], float(entry.get("max_seconds", 0.0))
            )

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()

    def render(self, precision: int = 4) -> str:
        """Counters and timers as an aligned, sorted terminal block."""
        lines = ["metrics:"]
        for name in sorted(self._counters):
            lines.append(f"  {name} = {self._counters[name]:,}")
        for name in sorted(self._timers):
            entry = self._timers[name]
            lines.append(
                f"  {name}: calls={int(entry['calls']):,} "
                f"total={entry['total_seconds']:.{precision}f}s "
                f"max={entry['max_seconds']:.{precision}f}s"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)


# --------------------------------------------------------------------- #
# optional process-wide registry (CLI --metrics)
# --------------------------------------------------------------------- #
_GLOBAL: Optional[MetricsRegistry] = None


def enable_global_metrics() -> MetricsRegistry:
    """Install (or return the existing) process-wide registry."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = MetricsRegistry()
    return _GLOBAL


def global_metrics() -> Optional[MetricsRegistry]:
    """The process-wide registry, or ``None`` when not enabled."""
    return _GLOBAL


def disable_global_metrics() -> None:
    """Remove the process-wide registry (mostly for tests)."""
    global _GLOBAL
    _GLOBAL = None


__all__ = [
    "MetricsRegistry",
    "Timer",
    "Snapshot",
    "enable_global_metrics",
    "global_metrics",
    "disable_global_metrics",
]
