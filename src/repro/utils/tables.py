"""Plain-text rendering of experiment tables and figure series.

The paper reports its evaluation as figures; the benchmark harness prints
the same information as aligned ASCII tables (one row per x-axis value, one
column per series) so the shape of each figure can be read off a terminal.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

Number = Union[int, float]


def _format_cell(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_format_cell(c, precision) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[j]) for j, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[Number],
    series: Mapping[str, Sequence[Optional[Number]]],
    precision: int = 2,
    title: Optional[str] = None,
) -> str:
    """Render a figure as a table: x-axis column plus one column per series.

    ``series`` maps a legend label to y-values aligned with ``x_values``;
    missing points may be ``None``.
    """
    for label, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {label!r} has {len(ys)} points for {len(x_values)} x values"
            )
    headers = [x_label, *series.keys()]
    rows = [
        [x, *(series[label][i] for label in series)]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, precision=precision, title=title)


def sparkline(values: Sequence[Number]) -> str:
    """A one-line unicode sparkline, handy for eyeballing trends in logs."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        return blocks[0] * len(vals)
    span = hi - lo
    return "".join(blocks[min(7, int((v - lo) / span * 8))] for v in vals)


__all__ = ["format_table", "format_series", "sparkline"]
