"""Shared utilities: RNG fan-out, metrics, tables, timers, validation."""

from repro.utils.metrics import (
    MetricsRegistry,
    Timer,
    disable_global_metrics,
    enable_global_metrics,
    global_metrics,
)
from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.tables import format_series, format_table
from repro.utils.timers import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_index,
    check_matrix,
    check_positive,
    check_vector,
)

__all__ = [
    "MetricsRegistry",
    "Timer",
    "enable_global_metrics",
    "global_metrics",
    "disable_global_metrics",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "format_series",
    "format_table",
    "Stopwatch",
    "check_fraction",
    "check_index",
    "check_matrix",
    "check_positive",
    "check_vector",
]
