"""Shared utilities: RNG fan-out, metrics, tracing, telemetry, profiling,
tables, timers."""

from repro.utils.metrics import (
    Histogram,
    MetricsRegistry,
    Timer,
    disable_global_metrics,
    enable_global_metrics,
    global_metrics,
)
from repro.utils.profiler import (
    DeterministicProfiler,
    current_profiler,
    disable_global_profiling,
    enable_global_profiling,
    global_profiler,
)
from repro.utils.telemetry import (
    InMemoryExporter,
    JsonlExporter,
    OpenMetricsExporter,
    TelemetrySink,
    current_sink,
    disable_global_telemetry,
    enable_global_telemetry,
    global_telemetry,
    parse_openmetrics,
    render_openmetrics_snapshot,
    validate_openmetrics,
)
from repro.utils.tracing import (
    Tracer,
    current_tracer,
    disable_global_tracing,
    enable_global_tracing,
    global_tracer,
    read_trace,
)
from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.tables import format_series, format_table
from repro.utils.timers import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_index,
    check_matrix,
    check_positive,
    check_vector,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "enable_global_metrics",
    "global_metrics",
    "disable_global_metrics",
    "Tracer",
    "current_tracer",
    "enable_global_tracing",
    "global_tracer",
    "disable_global_tracing",
    "read_trace",
    "DeterministicProfiler",
    "current_profiler",
    "enable_global_profiling",
    "global_profiler",
    "disable_global_profiling",
    "TelemetrySink",
    "InMemoryExporter",
    "JsonlExporter",
    "OpenMetricsExporter",
    "current_sink",
    "enable_global_telemetry",
    "global_telemetry",
    "disable_global_telemetry",
    "parse_openmetrics",
    "render_openmetrics_snapshot",
    "validate_openmetrics",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "format_series",
    "format_table",
    "Stopwatch",
    "check_fraction",
    "check_index",
    "check_matrix",
    "check_positive",
    "check_vector",
]
