"""Shared utilities: deterministic RNG fan-out, tables, timers, validation."""

from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.tables import format_series, format_table
from repro.utils.timers import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_index,
    check_matrix,
    check_positive,
    check_vector,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "format_series",
    "format_table",
    "Stopwatch",
    "check_fraction",
    "check_index",
    "check_matrix",
    "check_positive",
    "check_vector",
]
