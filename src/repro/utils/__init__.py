"""Shared utilities: RNG fan-out, metrics, tracing, tables, timers."""

from repro.utils.metrics import (
    Histogram,
    MetricsRegistry,
    Timer,
    disable_global_metrics,
    enable_global_metrics,
    global_metrics,
)
from repro.utils.tracing import (
    Tracer,
    current_tracer,
    disable_global_tracing,
    enable_global_tracing,
    global_tracer,
    read_trace,
)
from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.tables import format_series, format_table
from repro.utils.timers import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_index,
    check_matrix,
    check_positive,
    check_vector,
)

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "enable_global_metrics",
    "global_metrics",
    "disable_global_metrics",
    "Tracer",
    "current_tracer",
    "enable_global_tracing",
    "global_tracer",
    "disable_global_tracing",
    "read_trace",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "format_series",
    "format_table",
    "Stopwatch",
    "check_fraction",
    "check_index",
    "check_matrix",
    "check_positive",
    "check_vector",
]
