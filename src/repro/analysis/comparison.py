"""Head-to-head algorithm comparison on shared instances."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.algorithms.base import ReplicationAlgorithm
from repro.analysis.statistics import SummaryStats, summarize
from repro.core.cost import CostModel
from repro.core.problem import DRPInstance
from repro.errors import ValidationError
from repro.utils.metrics import global_metrics
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.tables import format_table

#: factory signature: given a per-run seed, build a fresh algorithm
AlgorithmFactory = Callable[[np.random.SeedSequence], ReplicationAlgorithm]


@dataclass
class ComparisonReport:
    """Per-algorithm summary statistics over a shared instance set."""

    savings: Dict[str, SummaryStats]
    runtimes: Dict[str, SummaryStats]
    replicas: Dict[str, SummaryStats]
    instances: int

    def best_algorithm(self) -> str:
        """Label with the highest mean savings."""
        return max(self.savings, key=lambda k: self.savings[k].mean)

    def render(self, precision: int = 3) -> str:
        rows = [
            [
                label,
                self.savings[label].mean,
                self.savings[label].ci_low,
                self.savings[label].ci_high,
                self.replicas[label].mean,
                self.runtimes[label].mean,
            ]
            for label in self.savings
        ]
        return format_table(
            ["algorithm", "savings %", "CI low", "CI high", "replicas",
             "seconds"],
            rows,
            precision=precision,
            title=f"Algorithm comparison over {self.instances} instances",
        )


def compare_algorithms(
    instances: Sequence[DRPInstance],
    factories: Dict[str, AlgorithmFactory],
    seed: SeedLike = None,
    confidence: float = 0.95,
) -> ComparisonReport:
    """Run every algorithm on every instance; summarise with CIs.

    All algorithms see the same instances (paired design); each run gets
    an independent child seed so stochastic algorithms are honestly
    re-randomised per instance.
    """
    if not instances:
        raise ValidationError("need at least one instance")
    if not factories:
        raise ValidationError("need at least one algorithm factory")
    savings: Dict[str, List[float]] = {label: [] for label in factories}
    runtimes: Dict[str, List[float]] = {label: [] for label in factories}
    replicas: Dict[str, List[float]] = {label: [] for label in factories}
    run_seeds = spawn_seeds(seed, len(instances) * len(factories))
    idx = 0
    for instance in instances:
        # picks up cache counters/timers when a --metrics registry is live
        model = CostModel(instance, metrics=global_metrics())
        for label, factory in factories.items():
            algorithm = factory(run_seeds[idx])
            idx += 1
            result = algorithm.run(instance, model)
            savings[label].append(result.savings_percent)
            runtimes[label].append(result.runtime_seconds)
            replicas[label].append(float(result.extra_replicas))
    return ComparisonReport(
        savings={
            label: summarize(vals, confidence)
            for label, vals in savings.items()
        },
        runtimes={
            label: summarize(vals, confidence)
            for label, vals in runtimes.items()
        },
        replicas={
            label: summarize(vals, confidence)
            for label, vals in replicas.items()
        },
        instances=len(instances),
    )


__all__ = ["AlgorithmFactory", "ComparisonReport", "compare_algorithms"]
