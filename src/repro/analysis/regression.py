"""The benchmark ledger: record wall-clock history, watch for regressions.

The repo's performance claims (incremental pricing speedups, the sparse
scale path, GA throughput) are only checkable over *time* — a single
``BENCH_*.json`` artifact says what one commit did on one machine, not
whether the next commit got slower.  This module adds the missing axis:

* :func:`write_bench_artifact` — the one writer both benchmark suites go
  through, so ``BENCH_incremental.json`` and ``BENCH_scale.json`` share
  a schema (``benchmark``/``algorithms``/``results``; earlier revisions
  drifted between a scalar ``algorithm`` and a list).
  :func:`normalize_bench_artifact` upgrades old artifacts on read.
* ``BENCH_history.jsonl`` — one JSON line per ``repro bench record``
  run: machine fingerprint, profile tier, and median-of-k wall-clock
  for every micro-benchmark in :data:`BENCH_SUITE`.
* :func:`compare_entries` — noise-aware deltas of the newest entry
  against a baseline.  The noise floor per benchmark is the median
  absolute deviation (MAD) over that machine's history, so a benchmark
  that naturally jitters by 10% does not page anyone at +12%, while a
  stable one does.
* :func:`render_report` — a markdown trend table for humans and CI job
  summaries.

``repro bench record | report | check`` is the CLI surface;
``check`` exits non-zero when any benchmark regressed beyond the
threshold *and* above its noise floor.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError

#: schema version stamped on every history line
HISTORY_VERSION = 1

#: default ledger location (repo root; committed so trends survive)
DEFAULT_HISTORY = "BENCH_history.jsonl"

#: a regression must exceed both the ratio threshold and the noise floor
DEFAULT_THRESHOLD = 1.25

#: per-benchmark repeats; the median is recorded
DEFAULT_REPEATS = 3

#: absolute slack (seconds) under which a slowdown is never flagged —
#: protects millisecond-scale benchmarks from scheduler jitter before
#: the history is deep enough for a MAD estimate
DEFAULT_MIN_DELTA = 0.010


# --------------------------------------------------------------------- #
# shared BENCH_*.json artifact writer
# --------------------------------------------------------------------- #
def write_bench_artifact(
    path: str,
    benchmark: str,
    algorithms: Sequence[str],
    results: List[Dict[str, object]],
    extra: Optional[Dict[str, object]] = None,
    merge_on: Optional[str] = None,
) -> str:
    """Write a benchmark artifact in the unified schema; returns ``path``.

    ``algorithms`` is always a list (the ``algorithm``-scalar variant is
    retired).  With ``merge_on`` set to a result key, records already in
    the file whose key value is not being rewritten are preserved — the
    scale suite uses this so the slow ``large`` tier accumulates next to
    the quick tiers instead of clobbering them.
    """
    payload: Dict[str, object] = {
        "benchmark": benchmark,
        "algorithms": list(algorithms),
        "results": results,
    }
    if extra:
        payload.update(extra)
    if merge_on is not None and os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fp:
                existing = normalize_bench_artifact(json.load(fp))
        except (ValueError, OSError):
            existing = {"results": []}
        seen = {record.get(merge_on) for record in results}
        payload["results"] = [
            record
            for record in existing.get("results", [])
            if record.get(merge_on) not in seen
        ] + results
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
    return path


def normalize_bench_artifact(
    payload: Dict[str, object],
) -> Dict[str, object]:
    """Upgrade a benchmark artifact to the unified schema.

    Accepts both historical shapes — ``{"algorithms": [...]}`` and the
    scalar ``{"algorithm": "SRA"}`` the scale suite used to write — and
    returns a copy carrying an ``algorithms`` list.
    """
    out = dict(payload)
    if "algorithms" not in out:
        algorithm = out.pop("algorithm", None)
        out["algorithms"] = [algorithm] if algorithm is not None else []
    else:
        out.pop("algorithm", None)
        out["algorithms"] = list(out["algorithms"])
    out.setdefault("results", [])
    return out


# --------------------------------------------------------------------- #
# the recorded micro-benchmark suite
# --------------------------------------------------------------------- #
def _bench_sra_solve() -> None:
    from repro.algorithms.sra import SRA
    from repro.workload import WorkloadSpec, generate_instance

    instance = generate_instance(
        WorkloadSpec(num_sites=30, num_objects=60), rng=11
    )
    SRA().run(instance)


def _bench_gra_evolve() -> None:
    from repro.algorithms import GAParams, GRA
    from repro.workload import WorkloadSpec, generate_instance

    instance = generate_instance(
        WorkloadSpec(num_sites=12, num_objects=24), rng=11
    )
    GRA(GAParams(generations=20, population_size=30), rng=3).run(instance)


def _bench_hill_climb_incremental() -> None:
    from repro.algorithms.localsearch import HillClimbing
    from repro.workload import WorkloadSpec, generate_instance

    instance = generate_instance(
        WorkloadSpec(num_sites=25, num_objects=50, capacity_ratio=0.25),
        rng=11,
    )
    HillClimbing(rng=7, incremental=True).run(instance)


def _bench_sim_replay() -> None:
    from repro.algorithms.sra import SRA
    from repro.sim import ReplicaSystem
    from repro.workload import WorkloadSpec, generate_instance
    from repro.workload.trace import generate_trace

    instance = generate_instance(
        WorkloadSpec(num_sites=16, num_objects=32), rng=11
    )
    result = SRA().run(instance)
    trace = generate_trace(instance, duration=2.0, rng=5)
    ReplicaSystem(instance, result.scheme).replay(trace)


def _bench_cost_batch() -> None:
    from repro.core import CostModel
    from repro.workload import WorkloadSpec, generate_instance

    instance = generate_instance(
        WorkloadSpec(num_sites=48, num_objects=96), rng=11
    )
    model = CostModel(instance)
    rng = np.random.default_rng(2)
    columns = rng.random((64, instance.num_sites)) < 0.3
    primaries = instance.primaries
    for obj in range(0, instance.num_objects, 8):
        cols = columns.copy()
        cols[:, int(primaries[obj])] = True
        model.object_costs_batch(obj, cols)


#: name -> zero-argument callable; every entry runs in-process and is
#: deterministic (fixed seeds), so only the *machine* varies run to run
BENCH_SUITE: Dict[str, Callable[[], None]] = {
    "sra_solve": _bench_sra_solve,
    "gra_evolve": _bench_gra_evolve,
    "hill_climb_incremental": _bench_hill_climb_incremental,
    "sim_replay": _bench_sim_replay,
    "cost_batch": _bench_cost_batch,
}


def machine_info() -> Dict[str, object]:
    """A fingerprint of the machine the numbers were produced on.

    Comparing across different fingerprints is refused by ``check`` —
    a laptop-vs-CI delta measures the hardware, not the code.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count() or 0,
    }


def record_entry(
    repeats: int = DEFAULT_REPEATS,
    label: str = "",
    profile: str = "",
    scale_seconds: float = 1.0,
    suite: Optional[Dict[str, Callable[[], None]]] = None,
) -> Dict[str, object]:
    """Run the suite and return one history entry (not yet persisted).

    ``scale_seconds`` multiplies every measured time before recording —
    a test/CI hook for exercising the regression check with a known
    injected slowdown (``repro bench record --scale-seconds 1.5``).
    """
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    if scale_seconds <= 0:
        raise ValidationError(
            f"scale_seconds must be > 0, got {scale_seconds}"
        )
    suite = BENCH_SUITE if suite is None else suite
    benchmarks: Dict[str, Dict[str, object]] = {}
    for name in sorted(suite):
        runs = []
        for _ in range(repeats):
            started = time.perf_counter()
            suite[name]()
            runs.append(
                (time.perf_counter() - started) * scale_seconds
            )
        benchmarks[name] = {
            "seconds": float(np.median(runs)),
            "runs": [float(r) for r in runs],
        }
    return {
        "version": HISTORY_VERSION,
        "recorded_at": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        ),
        "label": label,
        "profile": profile,
        "machine": machine_info(),
        "benchmarks": benchmarks,
    }


# --------------------------------------------------------------------- #
# the history ledger
# --------------------------------------------------------------------- #
def append_history(path: str, entry: Dict[str, object]) -> str:
    """Append one entry as a JSON line; returns ``path``."""
    with open(path, "a", encoding="utf-8") as fp:
        fp.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history(path: str) -> List[Dict[str, object]]:
    """Load the ledger; raises :class:`ValidationError` on a bad line."""
    if not os.path.exists(path):
        return []
    entries = []
    with open(path, encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError as exc:
                raise ValidationError(
                    f"{path}:{lineno}: unparsable history line: {exc}"
                ) from None
            if not isinstance(entry, dict) or "benchmarks" not in entry:
                raise ValidationError(
                    f"{path}:{lineno}: not a bench history entry"
                )
            entries.append(entry)
    return entries


def _same_machine(a: Dict[str, object], b: Dict[str, object]) -> bool:
    return a.get("machine") == b.get("machine") and a.get(
        "profile"
    ) == b.get("profile")


def _seconds(entry: Dict[str, object], name: str) -> Optional[float]:
    bench = dict(entry.get("benchmarks", {})).get(name)
    if bench is None:
        return None
    return float(bench["seconds"])


# --------------------------------------------------------------------- #
# regression detection
# --------------------------------------------------------------------- #
@dataclass
class BenchDelta:
    """One benchmark's movement between baseline and current entry."""

    name: str
    baseline_seconds: float
    current_seconds: float
    noise_seconds: float  #: MAD-derived noise floor over the history

    threshold: float = DEFAULT_THRESHOLD
    min_delta_seconds: float = DEFAULT_MIN_DELTA

    @property
    def ratio(self) -> float:
        if self.baseline_seconds == 0.0:
            return float("inf") if self.current_seconds else 1.0
        return self.current_seconds / self.baseline_seconds

    @property
    def regressed(self) -> bool:
        """Slower than ``threshold`` x baseline *and* beyond noise.

        The noise floor is ``max(3 * MAD, min_delta_seconds)``: until
        the history is deep enough to estimate jitter (MAD needs >= 3
        compatible entries), the absolute slack keeps millisecond-scale
        benchmarks from paging on scheduler noise alone.
        """
        slack = max(3.0 * self.noise_seconds, self.min_delta_seconds)
        beyond_noise = self.current_seconds > (
            self.baseline_seconds + slack
        )
        return self.ratio > self.threshold and beyond_noise

    @property
    def improved(self) -> bool:
        return self.ratio < 1.0 / self.threshold


@dataclass
class RegressionReport:
    """Outcome of comparing the newest entry against a baseline."""

    baseline_label: str
    current_label: str
    deltas: List[BenchDelta] = field(default_factory=list)

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"bench check: {self.current_label} vs {self.baseline_label}"
        ]
        for delta in self.deltas:
            flag = (
                "REGRESSED"
                if delta.regressed
                else ("improved" if delta.improved else "ok")
            )
            lines.append(
                f"  {delta.name}: {delta.baseline_seconds:.4f}s -> "
                f"{delta.current_seconds:.4f}s "
                f"({delta.ratio:.2f}x, noise +/-{delta.noise_seconds:.4f}s)"
                f" [{flag}]"
            )
        if not self.deltas:
            lines.append("  (no common benchmarks to compare)")
        return "\n".join(lines)


def _mad_noise(values: Sequence[float]) -> float:
    """Median absolute deviation, scaled to sigma-equivalent (1.4826)."""
    if len(values) < 3:
        return 0.0
    arr = np.asarray(values, dtype=float)
    return float(1.4826 * np.median(np.abs(arr - np.median(arr))))


def _entry_label(entry: Dict[str, object], index: int) -> str:
    label = entry.get("label") or ""
    stamp = entry.get("recorded_at") or f"entry {index}"
    return f"{label} ({stamp})" if label else str(stamp)


def compare_entries(
    history: List[Dict[str, object]],
    current: Optional[Dict[str, object]] = None,
    baseline: Optional[str] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> RegressionReport:
    """Compare ``current`` (default: last entry) against a baseline.

    The baseline is the most recent *earlier* entry with the same
    machine fingerprint and profile — or, when ``baseline`` is given,
    the latest compatible entry with that label.  Noise floors come from
    the full compatible history (MAD per benchmark), so one-off
    scheduler hiccups need >3 sigma to page.

    No compatible baseline (first run on a new machine, e.g. a fresh CI
    runner against a ledger seeded elsewhere) is a *pass*, not an
    error: the report carries zero deltas and the current entry simply
    becomes the machine's baseline.  An explicitly requested ``baseline``
    label that cannot be found still raises.
    """
    if threshold <= 1.0:
        raise ValidationError(
            f"threshold must be > 1.0, got {threshold}"
        )
    if current is None:
        if not history:
            raise ValidationError("bench history is empty; record first")
        current = history[-1]
        history = history[:-1]
    compatible = [
        (i, e)
        for i, e in enumerate(history)
        if _same_machine(e, current)
    ]
    if baseline:
        compatible = [
            (i, e) for i, e in compatible if e.get("label") == baseline
        ]
        if not compatible:
            raise ValidationError(
                f"no compatible history entry labelled {baseline!r}"
            )
    if not compatible:
        return RegressionReport(
            baseline_label="(no compatible baseline on this machine)",
            current_label=_entry_label(current, len(history)),
            deltas=[],
        )
    base_index, base = compatible[-1]
    deltas = []
    for name in sorted(dict(current.get("benchmarks", {}))):
        base_seconds = _seconds(base, name)
        cur_seconds = _seconds(current, name)
        if base_seconds is None or cur_seconds is None:
            continue
        series = [
            s
            for _, e in compatible
            if (s := _seconds(e, name)) is not None
        ]
        deltas.append(
            BenchDelta(
                name=name,
                baseline_seconds=base_seconds,
                current_seconds=cur_seconds,
                noise_seconds=_mad_noise(series),
                threshold=threshold,
            )
        )
    return RegressionReport(
        baseline_label=_entry_label(base, base_index),
        current_label=_entry_label(current, len(history)),
        deltas=deltas,
    )


def render_report(
    history: List[Dict[str, object]], last: int = 10
) -> str:
    """A markdown trend table over the ``last`` history entries."""
    if not history:
        return "no bench history recorded yet\n"
    window = history[-last:]
    names = sorted(
        {
            name
            for entry in window
            for name in dict(entry.get("benchmarks", {}))
        }
    )
    header = (
        "| recorded | profile | "
        + " | ".join(names)
        + " |"
    )
    rule = "|" + "---|" * (len(names) + 2)
    lines = ["# bench history", "", header, rule]
    for entry in window:
        cells = []
        for name in names:
            seconds = _seconds(entry, name)
            cells.append("-" if seconds is None else f"{seconds:.4f}s")
        stamp = str(entry.get("recorded_at", "?"))
        label = entry.get("label") or ""
        if label:
            stamp = f"{stamp} ({label})"
        profile = str(entry.get("profile") or "-")
        lines.append(
            "| " + " | ".join([stamp, profile, *cells]) + " |"
        )
    machines = {
        json.dumps(entry.get("machine", {}), sort_keys=True)
        for entry in window
    }
    if len(machines) > 1:
        lines.append("")
        lines.append(
            f"note: entries span {len(machines)} machine fingerprints; "
            "cross-machine cells are not comparable"
        )
    return "\n".join(lines) + "\n"


__all__ = [
    "HISTORY_VERSION",
    "DEFAULT_HISTORY",
    "DEFAULT_THRESHOLD",
    "DEFAULT_REPEATS",
    "BENCH_SUITE",
    "BenchDelta",
    "RegressionReport",
    "write_bench_artifact",
    "normalize_bench_artifact",
    "machine_info",
    "record_entry",
    "append_history",
    "load_history",
    "compare_entries",
    "render_report",
]
