"""Convergence diagnostics for GA runs.

GRA results carry per-generation convergence records — project the flat
series with ``result.stats.history("best_fitness")`` (one entry per
generation, monotone because of elite tracking).  These helpers answer
the budget
questions the paper settles by eyeballing: how many generations until
within x% of the final value, where progress stalls, and how much of
the final quality the initial (SRA-seeded) population already had.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ValidationError


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of one best-fitness history."""

    generations: int
    initial_fitness: float
    final_fitness: float
    improvement: float
    generations_to_95pct: Optional[int]
    generations_to_99pct: Optional[int]
    stalled_from: Optional[int]
    seeding_share: float

    def summary(self) -> str:
        g95 = (
            "n/a"
            if self.generations_to_95pct is None
            else str(self.generations_to_95pct)
        )
        stalled = "never" if self.stalled_from is None else str(self.stalled_from)
        return (
            f"fitness {self.initial_fitness:.4f} -> {self.final_fitness:.4f} "
            f"over {self.generations} generations; 95% of the gain by "
            f"generation {g95}; stalled from generation {stalled}; "
            f"seeding contributed {self.seeding_share * 100:.1f}% of the "
            "final fitness"
        )


def _first_generation_reaching(
    history: np.ndarray, target: float
) -> Optional[int]:
    hits = np.nonzero(history >= target - 1e-12)[0]
    return int(hits[0]) if hits.size else None


def analyze_convergence(
    history: Sequence[float],
    stall_window: int = 10,
) -> ConvergenceReport:
    """Analyse a monotone best-fitness history.

    ``history[0]`` is the fitness of the initial population's best
    member; subsequent entries are per-generation best-so-far values.
    ``stalled_from`` is the first generation after which nothing
    improved for ``stall_window`` consecutive generations (and never
    again).
    """
    arr = np.asarray(list(history), dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("history must be a non-empty sequence")
    if np.any(np.diff(arr) < -1e-9):
        raise ValidationError(
            "history must be non-decreasing (best-so-far fitness)"
        )
    if stall_window < 1:
        raise ValidationError(
            f"stall_window must be >= 1, got {stall_window}"
        )

    initial = float(arr[0])
    final = float(arr[-1])
    improvement = final - initial

    if improvement > 1e-12:
        g95 = _first_generation_reaching(arr, initial + 0.95 * improvement)
        g99 = _first_generation_reaching(arr, initial + 0.99 * improvement)
    else:
        g95 = g99 = 0

    # last generation where fitness improved
    improved = np.nonzero(np.diff(arr) > 1e-12)[0]
    if improved.size == 0:
        stalled_from: Optional[int] = 0
    else:
        last_gain = int(improved[-1]) + 1
        remaining = arr.size - 1 - last_gain
        stalled_from = last_gain if remaining >= stall_window else None

    seeding_share = 0.0 if final <= 0 else min(1.0, max(0.0, initial / final))

    return ConvergenceReport(
        generations=arr.size - 1,
        initial_fitness=initial,
        final_fitness=final,
        improvement=improvement,
        generations_to_95pct=g95,
        generations_to_99pct=g99,
        stalled_from=stalled_from,
        seeding_share=seeding_share,
    )


__all__ = ["ConvergenceReport", "analyze_convergence"]
