"""Analysis utilities: GA convergence, statistics, algorithm comparison.

Extensions beyond the paper that a practitioner adopting these
algorithms needs: confidence intervals on instance-averaged savings
(the paper reports bare means over 15 networks), paired comparisons
between algorithms on the same networks, and convergence diagnostics
for tuning the GA budget.
"""

from repro.analysis.convergence import ConvergenceReport, analyze_convergence
from repro.analysis.statistics import (
    SummaryStats,
    paired_comparison,
    summarize,
)
from repro.analysis.comparison import ComparisonReport, compare_algorithms
from repro.analysis.regression import (
    BenchDelta,
    RegressionReport,
    compare_entries,
    load_history,
    normalize_bench_artifact,
    record_entry,
    render_report,
    write_bench_artifact,
)
from repro.analysis.sensitivity import (
    SensitivityResult,
    sweep_ga_parameter,
)

__all__ = [
    "ConvergenceReport",
    "analyze_convergence",
    "SummaryStats",
    "summarize",
    "paired_comparison",
    "ComparisonReport",
    "compare_algorithms",
    "SensitivityResult",
    "sweep_ga_parameter",
    "BenchDelta",
    "RegressionReport",
    "compare_entries",
    "load_history",
    "normalize_bench_artifact",
    "record_entry",
    "render_report",
    "write_bench_artifact",
]
