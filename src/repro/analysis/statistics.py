"""Statistics over instance-averaged experiment results.

The paper reports bare means over 15 random networks; these helpers add
the error bars: t-based confidence intervals and paired comparisons
(both algorithms always run on the *same* networks in this library's
harness, so pairing is the statistically right move).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ValidationError


@dataclass(frozen=True)
class SummaryStats:
    """Mean, spread and a t-based confidence interval of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    confidence: float

    def summary(self) -> str:
        return (
            f"mean {self.mean:.3f} "
            f"[{self.ci_low:.3f}, {self.ci_high:.3f}] "
            f"({self.confidence * 100:.0f}% CI, n={self.count})"
        )


def summarize(
    values: Sequence[float], confidence: float = 0.95
) -> SummaryStats:
    """Summary statistics with a Student-t confidence interval.

    A single observation yields a degenerate interval at the mean (no
    spread information), which is more honest than crashing.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValidationError("values must be a non-empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must lie in (0, 1), got {confidence}"
        )
    mean = float(arr.mean())
    if arr.size == 1:
        return SummaryStats(
            count=1, mean=mean, std=0.0, minimum=mean, maximum=mean,
            ci_low=mean, ci_high=mean, confidence=confidence,
        )
    std = float(arr.std(ddof=1))
    sem = std / math.sqrt(arr.size)
    t_crit = float(scipy_stats.t.ppf((1 + confidence) / 2, arr.size - 1))
    half = t_crit * sem
    return SummaryStats(
        count=int(arr.size),
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )


@dataclass(frozen=True)
class PairedComparison:
    """Paired comparison of algorithm A vs algorithm B on shared inputs."""

    mean_difference: float  # mean(A - B)
    ci_low: float
    ci_high: float
    p_value: float
    a_wins: int
    b_wins: int
    ties: int
    significant: bool

    def summary(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return (
            f"mean diff {self.mean_difference:+.3f} "
            f"[{self.ci_low:+.3f}, {self.ci_high:+.3f}], "
            f"p={self.p_value:.4f} ({verdict}); "
            f"wins {self.a_wins}-{self.b_wins}-{self.ties}"
        )


def paired_comparison(
    a: Sequence[float],
    b: Sequence[float],
    confidence: float = 0.95,
    tie_tolerance: float = 1e-9,
) -> PairedComparison:
    """Paired t-test of ``a`` vs ``b`` (same instances, same order)."""
    a_arr = np.asarray(list(a), dtype=float)
    b_arr = np.asarray(list(b), dtype=float)
    if a_arr.shape != b_arr.shape or a_arr.ndim != 1 or a_arr.size < 2:
        raise ValidationError(
            "paired samples must be equal-length 1-D sequences of >= 2"
        )
    diff = a_arr - b_arr
    summary = summarize(diff, confidence)
    if np.allclose(diff, diff[0]):
        # zero variance: the t statistic is undefined; treat a constant
        # non-zero difference as maximally significant
        p_value = 0.0 if abs(float(diff[0])) > tie_tolerance else 1.0
    else:
        _, p_value = scipy_stats.ttest_rel(a_arr, b_arr)
        p_value = float(p_value)
    return PairedComparison(
        mean_difference=summary.mean,
        ci_low=summary.ci_low,
        ci_high=summary.ci_high,
        p_value=p_value,
        a_wins=int(np.sum(diff > tie_tolerance)),
        b_wins=int(np.sum(diff < -tie_tolerance)),
        ties=int(np.sum(np.abs(diff) <= tie_tolerance)),
        significant=p_value < (1.0 - confidence),
    )


__all__ = ["SummaryStats", "summarize", "PairedComparison", "paired_comparison"]
