"""GA parameter sensitivity sweeps.

Section 4 settles on ``N_p=50, N_g=80, mu_c=0.9, mu_m=0.01`` "after
considering a series of experimental results" and cites Grefenstette's
classic ranges.  This module reruns that series on demand: sweep any
:class:`~repro.algorithms.gra.GAParams` field over a value grid, holding
everything else at the given base configuration, and report mean savings
and runtime per value with confidence intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Sequence

from repro.algorithms.gra.engine import GRA
from repro.algorithms.gra.params import GAParams
from repro.analysis.statistics import SummaryStats, summarize
from repro.core.cost import CostModel
from repro.core.problem import DRPInstance
from repro.errors import ValidationError
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.tables import format_table

#: GAParams fields that can be swept
SWEEPABLE_FIELDS = (
    "population_size",
    "generations",
    "crossover_rate",
    "mutation_rate",
    "elite_interval",
    "perturbed_fraction",
    "perturbation_share",
)


@dataclass
class SensitivityResult:
    """Savings/runtime per value of one swept GA parameter."""

    parameter: str
    values: List[object]
    savings: Dict[object, SummaryStats]
    runtimes: Dict[object, SummaryStats]
    base_params: GAParams

    def best_value(self) -> object:
        return max(self.values, key=lambda v: self.savings[v].mean)

    def render(self, precision: int = 3) -> str:
        rows = [
            [
                value,
                self.savings[value].mean,
                self.savings[value].ci_low,
                self.savings[value].ci_high,
                self.runtimes[value].mean,
            ]
            for value in self.values
        ]
        return format_table(
            [self.parameter, "savings %", "CI low", "CI high", "seconds"],
            rows,
            precision=precision,
            title=f"GRA sensitivity to {self.parameter}",
        )


def sweep_ga_parameter(
    instances: Sequence[DRPInstance],
    parameter: str,
    values: Sequence[object],
    base_params: GAParams = GAParams(),
    seed: SeedLike = None,
    confidence: float = 0.95,
) -> SensitivityResult:
    """Run GRA at each parameter value over the shared instances."""
    if parameter not in SWEEPABLE_FIELDS:
        raise ValidationError(
            f"cannot sweep {parameter!r}; choose from {SWEEPABLE_FIELDS}"
        )
    if not instances:
        raise ValidationError("need at least one instance")
    if not values:
        raise ValidationError("need at least one value")
    savings: Dict[object, List[float]] = {v: [] for v in values}
    runtimes: Dict[object, List[float]] = {v: [] for v in values}
    run_seeds = spawn_seeds(seed, len(instances) * len(values))
    idx = 0
    for instance in instances:
        model = CostModel(instance)
        for value in values:
            params = base_params.with_overrides(**{parameter: value})
            result = GRA(params, rng=run_seeds[idx]).run(instance, model)
            idx += 1
            savings[value].append(result.savings_percent)
            runtimes[value].append(result.runtime_seconds)
    return SensitivityResult(
        parameter=parameter,
        values=list(values),
        savings={
            v: summarize(vals, confidence) for v, vals in savings.items()
        },
        runtimes={
            v: summarize(vals, confidence) for v, vals in runtimes.items()
        },
        base_params=base_params,
    )


__all__ = ["SWEEPABLE_FIELDS", "SensitivityResult", "sweep_ga_parameter"]
