"""The ``repro`` command-line interface.

Subcommands:

* ``generate`` — synthesise a Section 6.1 instance and save it as JSON;
* ``solve``    — run an algorithm on a saved instance, report quality,
  optionally save the scheme;
* ``evaluate`` — re-evaluate a saved scheme (e.g. under a different
  instance file with drifted patterns);
* ``simulate`` — replay a request trace through the discrete-event
  simulator and cross-check the analytic cost;
* ``compare``  — run several algorithms over freshly generated
  instances and print mean savings with confidence intervals;
* ``figures``  — alias of ``repro-experiments`` (reproduce the paper's
  figures);
* ``trace``    — summarise a trace file written by ``--trace`` (top
  spans by self time, per-phase breakdown, GRA convergence, AGRA
  decisions; ``--causal`` adds happens-before analysis);
* ``explain``  — print the decision chain for one object from a
  ``--ledger`` file (see ``docs/causality.md``);
* ``bench``    — record the micro-benchmark suite into the
  ``BENCH_history.jsonl`` ledger (``record``), render a markdown trend
  table (``report``), and fail on noise-adjusted wall-clock regressions
  (``check``);
* ``conform``  — run the differential conformance oracle over the
  scenario corpus (``run``), list scenarios and invariants
  (``corpus``), and minimise a failing scenario to a JSON repro
  artifact (``shrink``).  See ``docs/conformance.md``.

Algorithms are resolved through the capability-declaring
:class:`~repro.runtime.registry.SolverRegistry`; the cross-cutting
flags — ``--trace``/``--trace-format``, ``--profile`` family,
``--openmetrics``/``--telemetry``, ``--metrics``, ``--ledger``,
``--faults`` and ``--parallel`` — are defined once in
:mod:`repro.runtime.cli_options` and accepted by every subcommand,
wired through one :class:`~repro.runtime.context.RunContext` per
invocation.  See ``docs/architecture.md``, ``docs/observability.md``
and ``docs/telemetry.md``.

Examples
--------
::

    repro generate --sites 20 --objects 50 --update-ratio 0.05 -o inst.json
    repro solve inst.json --algorithm gra --save-scheme scheme.json
    repro evaluate scheme.json
    repro simulate scheme.json --duration 60
    repro compare --sites 15 --objects 30 --instances 5 \
        --algorithm sra --algorithm gra --algorithm hill-climbing
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.analysis import compare_algorithms
from repro.core import CostModel
from repro.errors import ReproError
from repro.io import (
    load_instance,
    load_scheme,
    save_instance,
    save_scheme,
)
from repro.runtime import (
    add_runtime_options,
    context_from_args,
    default_registry,
    runtime_session,
)
from repro.sim import FaultInjector, ReplicaSystem, Simulator
from repro.utils.telemetry import current_sink
from repro.version import __version__
from repro.workload import WorkloadSpec, generate_instance, generate_instances
from repro.workload.trace import generate_trace


def _solve_choices() -> List[str]:
    """Algorithms runnable on a bare instance (the registry decides)."""
    return sorted(default_registry().names(standalone=True))


def _compare_choices() -> List[str]:
    # branch-and-bound is exponential in the number of sites; keep it
    # out of the multi-instance comparison grid
    return [name for name in _solve_choices() if name != "optimal"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Data replication algorithms (SRA / GRA / AGRA) from "
            "Loukopoulos & Ahmad, ICDCS 2000."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command")

    gen = sub.add_parser("generate", help="synthesise a DRP instance")
    gen.add_argument("--sites", type=int, required=True)
    gen.add_argument("--objects", type=int, required=True)
    gen.add_argument("--update-ratio", type=float, default=0.05)
    gen.add_argument("--capacity-ratio", type=float, default=0.15)
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("-o", "--output", required=True)
    add_runtime_options(gen)

    solve = sub.add_parser("solve", help="solve a saved instance")
    solve.add_argument("instance")
    solve.add_argument(
        "--algorithm",
        choices=_solve_choices(),
        default="sra",
    )
    solve.add_argument("--seed", type=int, default=None)
    solve.add_argument("--generations", type=int, default=0,
                       help="override GRA generations")
    solve.add_argument("--save-scheme", default=None)
    add_runtime_options(solve)

    evaluate = sub.add_parser("evaluate", help="evaluate a saved scheme")
    evaluate.add_argument("scheme")
    evaluate.add_argument(
        "--instance",
        default=None,
        help="evaluate under this instance instead of the embedded one "
        "(same network/storage, e.g. drifted patterns)",
    )
    add_runtime_options(evaluate)

    simulate = sub.add_parser(
        "simulate", help="replay a trace through the simulator"
    )
    simulate.add_argument("scheme")
    simulate.add_argument("--duration", type=float, default=1.0)
    simulate.add_argument("--seed", type=int, default=None)
    add_runtime_options(simulate)

    compare = sub.add_parser(
        "compare", help="compare algorithms over fresh instances"
    )
    compare.add_argument("--sites", type=int, default=15)
    compare.add_argument("--objects", type=int, default=30)
    compare.add_argument("--update-ratio", type=float, default=0.05)
    compare.add_argument("--capacity-ratio", type=float, default=0.15)
    compare.add_argument("--instances", type=int, default=5)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--algorithm",
        action="append",
        choices=_compare_choices(),
        help="repeatable; default: sra and gra",
    )
    add_runtime_options(compare)

    figures = sub.add_parser(
        "figures", help="reproduce the paper's figures (see repro-experiments)"
    )
    figures.add_argument("rest", nargs=argparse.REMAINDER)

    trace = sub.add_parser(
        "trace", help="summarise a trace file written by --trace"
    )
    trace.add_argument("file", help="trace file (jsonl or chrome format)")
    trace.add_argument(
        "--top",
        type=int,
        default=15,
        help="rows in the top-spans-by-self-time table (default 15)",
    )
    trace.add_argument(
        "--causal",
        action="store_true",
        help="append happens-before analysis: message flow, per-round "
        "latency attribution and the critical path (docs/causality.md)",
    )
    add_runtime_options(trace)

    explain = sub.add_parser(
        "explain",
        help="print the decision chain for one object from a "
        "--ledger file",
    )
    explain.add_argument("ledger_file", help="JSONL ledger (--ledger FILE)")
    explain.add_argument(
        "--object",
        type=int,
        required=True,
        metavar="K",
        help="object index whose placement history to explain",
    )
    explain.add_argument(
        "--site",
        type=int,
        default=None,
        metavar="I",
        help="restrict the chain to decisions at site I",
    )
    explain.add_argument(
        "--at",
        type=float,
        default=None,
        metavar="T",
        help="cut the chain at logical time T (epoch / round number)",
    )
    add_runtime_options(explain)

    bench = sub.add_parser(
        "bench",
        help="record / report / check the benchmark wall-clock ledger",
    )
    bench_sub = bench.add_subparsers(dest="bench_command")

    def _bench_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--history",
            default=None,
            metavar="FILE",
            help="ledger file (default BENCH_history.jsonl)",
        )
        add_runtime_options(p)

    record = bench_sub.add_parser(
        "record", help="run the micro-benchmark suite and append an entry"
    )
    _bench_common(record)
    record.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per benchmark; the median is recorded",
    )
    record.add_argument(
        "--label", default="", help="tag this entry (e.g. a commit sha)"
    )
    record.add_argument(
        "--scale-seconds",
        type=float,
        default=1.0,
        metavar="X",
        help="multiply measured times by X before recording (test hook "
        "for exercising `bench check` with a known slowdown)",
    )

    report = bench_sub.add_parser(
        "report", help="print a markdown trend table over the ledger"
    )
    _bench_common(report)
    report.add_argument(
        "--last", type=int, default=10, help="entries to include"
    )
    report.add_argument(
        "-o",
        "--output",
        default=None,
        help="also write the markdown to this file",
    )

    check = bench_sub.add_parser(
        "check",
        help="compare the newest entry against a baseline; exit 1 on "
        "regression",
    )
    _bench_common(check)
    check.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="regression ratio threshold (default 1.25)",
    )
    check.add_argument(
        "--baseline",
        default=None,
        help="compare against the latest compatible entry with this "
        "label instead of the previous entry",
    )

    conform = sub.add_parser(
        "conform",
        help="differential conformance oracle: run / corpus / shrink",
    )
    conform_sub = conform.add_subparsers(dest="conform_command")

    conform_run = conform_sub.add_parser(
        "run", help="run the oracle + invariants over the corpus"
    )
    conform_run.add_argument(
        "--corpus",
        choices=["default"],
        default="default",
        help="fixed corpus to run (default: default)",
    )
    conform_run.add_argument(
        "--budget",
        type=int,
        default=0,
        metavar="N",
        help="additionally run N seeded sweep scenarios (default 0)",
    )
    conform_run.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the --budget sweep (default 0)",
    )
    conform_run.add_argument(
        "--invariant",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this invariant (repeatable; default: all)",
    )
    conform_run.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the full per-path report as JSON to FILE",
    )
    add_runtime_options(conform_run)

    conform_corpus = conform_sub.add_parser(
        "corpus", help="list corpus scenarios and registered invariants"
    )
    conform_corpus.add_argument(
        "--budget",
        type=int,
        default=0,
        metavar="N",
        help="also preview N seeded sweep scenarios",
    )
    conform_corpus.add_argument(
        "--seed", type=int, default=0, help="seed for the sweep preview"
    )
    add_runtime_options(conform_corpus)

    conform_shrink = conform_sub.add_parser(
        "shrink",
        help="minimise a failing scenario (or replay a repro artifact)",
    )
    conform_shrink.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="corpus scenario to shrink (must currently fail the oracle)",
    )
    conform_shrink.add_argument(
        "--artifact",
        default=None,
        metavar="FILE",
        help="replay a shrunken repro artifact instead of shrinking",
    )
    conform_shrink.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="FILE",
        help="write the shrunken repro artifact to FILE "
        "(default CONFORM_repro.json)",
    )
    conform_shrink.add_argument(
        "--invariant",
        action="append",
        default=None,
        metavar="NAME",
        help="shrink against only this invariant (repeatable)",
    )
    add_runtime_options(conform_shrink)

    return parser


# --------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------- #
def _cmd_generate(args: argparse.Namespace) -> int:
    with runtime_session(args):
        spec = WorkloadSpec(
            num_sites=args.sites,
            num_objects=args.objects,
            update_ratio=args.update_ratio,
            capacity_ratio=args.capacity_ratio,
        )
        instance = generate_instance(spec, rng=args.seed)
        path = save_instance(instance, args.output)
        print(f"wrote {instance} to {path}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.utils.metrics import MetricsRegistry

    instance = load_instance(args.instance)
    registry = MetricsRegistry() if args.metrics else None
    model = CostModel(instance, metrics=registry)
    solvers = default_registry()
    with runtime_session(args, registry=registry):
        if args.algorithm == "gra":
            algorithm = solvers.create(
                "gra", seed=args.seed, generations=args.generations
            )
        else:
            algorithm = solvers.create(args.algorithm, seed=args.seed)
        result = algorithm.run(instance, model)
        sink = current_sink()
        if sink.enabled:
            sink.set_gauge("repro_solve_total_cost", result.total_cost)
            sink.set_gauge("repro_solve_d_prime", result.d_prime)
            sink.set_gauge(
                "repro_solve_savings_percent", result.savings_percent
            )
            info = model.cache_info()
            sink.set_gauge("repro_cost_cache_hit_rate", info["hit_rate"])
    print(result.summary())
    print(f"D' = {result.d_prime:,.2f}   D = {result.total_cost:,.2f}")
    if registry is not None:
        info = model.cache_info()
        print(
            f"cache: {info['hits']:,} hits / {info['misses']:,} misses "
            f"(hit rate {info['hit_rate']:.1%}, "
            f"{info['evictions']:,} evictions)"
        )
        print(registry.render())
    if args.save_scheme:
        path = save_scheme(result.scheme, args.save_scheme)
        print(f"scheme saved to {path}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    with runtime_session(args):
        scheme = load_scheme(args.scheme)
        instance = (
            load_instance(args.instance) if args.instance else scheme.instance
        )
        model = CostModel(instance)
        cost = model.total_cost(scheme.matrix)
        print(f"scheme: {scheme}")
        print(f"D = {cost:,.2f}   D' = {model.d_prime():,.2f}")
        print(f"savings = {model.savings_percent(scheme.matrix):.2f}%")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    # the context is built before the replay machinery so the fault plan
    # it carries can be installed ahead of the session
    ctx = context_from_args(args)
    scheme = load_scheme(args.scheme)
    instance = scheme.instance
    trace = generate_trace(instance, duration=args.duration, rng=args.seed)
    system = ReplicaSystem(instance, scheme)
    simulator = Simulator()
    plan = ctx.fault_plan
    injector: Optional[FaultInjector] = None
    if plan is not None:
        injector = FaultInjector(plan)
        # Install before attach: a fault transition at time t must apply
        # before requests scheduled at the same t (insertion order
        # breaks ties in the event queue).
        injector.install(simulator, system)
    system.attach(simulator, trace)
    with runtime_session(args, ctx=ctx):
        simulator.run()
        system.metrics.publish(current_sink())
    analytic = CostModel(instance).total_cost(scheme.matrix)
    measured = system.metrics.request_ntc
    faults_active = plan is not None and not plan.is_empty
    print(f"requests replayed: {len(trace):,}")
    print(f"measured NTC:      {measured:,.2f}")
    print(f"analytic D(X):     {analytic:,.2f}")
    if faults_active:
        # The analytic model assumes a healthy network; under injected
        # faults a mismatch is expected, not a bug.
        print(f"exact match:       n/a ({injector.events_applied} fault "
              "events applied)")
    else:
        print(f"exact match:       {abs(measured - analytic) < 1e-6}")
    for key, value in sorted(system.metrics.summary().items()):
        print(f"  {key} = {value:,.3f}")
    print("latency percentiles:")
    for key, value in sorted(system.metrics.latency_summary().items()):
        print(f"  {key} = {value:,.3f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    labels = args.algorithm or ["sra", "gra"]
    spec = WorkloadSpec(
        num_sites=args.sites,
        num_objects=args.objects,
        update_ratio=args.update_ratio,
        capacity_ratio=args.capacity_ratio,
    )
    instances = generate_instances(spec, args.instances, rng=args.seed)
    solvers = default_registry()
    factories = {
        label: (lambda seed, _label=label: solvers.create(_label, seed=seed))
        for label in labels
    }
    with runtime_session(args) as ctx:
        report = compare_algorithms(
            instances, factories, seed=args.seed + 1
        )
        print(report.render())
        print(f"\nbest by mean savings: {report.best_algorithm()}")
        if ctx.fault_plan is not None:
            _fault_replay_section(
                instances, factories, ctx.fault_plan, args.faults,
                args.seed,
            )
    if ctx.metrics is not None:
        print()
        print(ctx.metrics.render())
    return 0


def _fault_replay_section(
    instances, factories, plan, faults_path: str, seed: int
) -> None:
    """Replay every algorithm's schemes under a fault plan; print means.

    Each (algorithm, instance) cell re-solves with its own derived seed,
    generates the instance's request trace and replays it through a
    fresh :class:`FaultInjector` — so the table shows how each
    algorithm's placements hold up when the network degrades.
    """
    from repro.utils.rng import spawn_seeds
    from repro.utils.tables import format_table

    rows = []
    labels = list(factories)
    run_seeds = spawn_seeds(seed + 2, len(instances) * len(labels) * 2)
    idx = 0
    for label in labels:
        ntcs, rejected, fault_events = [], [], 0
        for instance in instances:
            algorithm = factories[label](run_seeds[idx])
            trace_seed = run_seeds[idx + 1]
            idx += 2
            result = algorithm.run(instance)
            trace = generate_trace(instance, rng=trace_seed)
            system = ReplicaSystem(instance, result.scheme)
            injector = FaultInjector(plan)
            system.replay(trace, injector=injector)
            metrics = system.metrics
            ntcs.append(metrics.request_ntc)
            rejected.append(
                float(metrics.rejected_reads + metrics.rejected_writes)
            )
            fault_events += injector.events_applied
        rows.append(
            [
                label,
                float(np.mean(ntcs)),
                float(np.mean(rejected)),
                float(fault_events) / len(instances),
            ]
        )
    print()
    print(
        format_table(
            ["algorithm", "faulty NTC", "rejected req", "fault events"],
            rows,
            precision=2,
            title=f"Degraded-mode replay under {faults_path}",
        )
    )


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.runner import main as figures_main

    return figures_main(args.rest)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.utils.trace_summary import render_summary, summarize

    with runtime_session(args):
        summary = summarize(args.file)
        print(render_summary(summary, top=args.top))
        if args.causal:
            from repro.obs.causal import causal_sections

            print()
            print(causal_sections(args.file))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.ledger import read_ledger, render_explanation

    with runtime_session(args):
        entries = read_ledger(args.ledger_file)
        print(
            render_explanation(
                entries, args.object, site=args.site, at=args.at
            )
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import regression
    from repro.experiments.config import get_profile

    command = getattr(args, "bench_command", None)
    if command not in ("record", "report", "check"):
        print(
            "usage: repro bench {record,report,check} ...",
            file=sys.stderr,
        )
        return 2
    history = args.history or regression.DEFAULT_HISTORY
    with runtime_session(args):
        if command == "record":
            entry = regression.record_entry(
                repeats=args.repeats or regression.DEFAULT_REPEATS,
                label=args.label,
                profile=get_profile().name,
                scale_seconds=args.scale_seconds,
            )
            regression.append_history(history, entry)
            print(f"recorded {len(entry['benchmarks'])} benchmarks "
                  f"to {history}")
            for name in sorted(entry["benchmarks"]):
                seconds = entry["benchmarks"][name]["seconds"]
                print(f"  {name}: {seconds:.4f}s")
            return 0
        if command == "report":
            text = regression.render_report(
                regression.load_history(history), last=args.last
            )
            print(text, end="")
            if args.output:
                with open(args.output, "w", encoding="utf-8") as fp:
                    fp.write(text)
                print(f"report written to {args.output}")
            return 0
        entries = regression.load_history(history)
        if not entries:
            # A missing or empty ledger is a bootstrap state, not a
            # regression: say what to do and succeed so fresh checkouts
            # can run the full CI script unchanged.
            print(
                f"bench ledger {history} is missing or empty; nothing "
                f"to check.\nRecord a baseline first:  repro bench "
                f"record --history {history}"
            )
            return 0
        report = regression.compare_entries(
            entries,
            baseline=args.baseline,
            threshold=args.threshold or regression.DEFAULT_THRESHOLD,
        )
        print(report.render())
        if not report.ok:
            names = ", ".join(d.name for d in report.regressions)
            print(f"REGRESSION: {names}", file=sys.stderr)
            return 1
        return 0


def _conform_corpus_for(args: argparse.Namespace):
    from repro.conformance import default_corpus, seeded_corpus

    scenarios = list(default_corpus())
    if getattr(args, "budget", 0):
        scenarios.extend(seeded_corpus(args.seed, args.budget))
    return scenarios


def _cmd_conform_run(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.conformance import run_corpus
    from repro.utils.metrics import MetricsRegistry

    scenarios = _conform_corpus_for(args)
    registry = MetricsRegistry()
    with runtime_session(args, registry=registry):
        def progress(report) -> None:
            status = "ok" if report.passed else "FAIL"
            print(
                f"  {report.name:<24} {report.num_sites:>3} x "
                f"{report.num_objects:<3} {status}"
            )

        print(f"conformance: {len(scenarios)} scenarios")
        corpus = run_corpus(
            scenarios,
            invariant_names=args.invariant,
            registry=registry,
            progress=progress,
        )
        sink = current_sink()
        if sink.enabled:
            sink.set_gauge(
                "repro_conform_scenarios", len(corpus.reports)
            )
            sink.set_gauge(
                "repro_conform_failing", len(corpus.failing)
            )
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            json_module.dump(corpus.to_dict(), fp, indent=2)
            fp.write("\n")
        print(f"report written to {args.json}")
    if corpus.passed:
        print(f"all {len(corpus.reports)} scenarios conform")
        return 0
    print(
        f"{len(corpus.failing)} of {len(corpus.reports)} scenarios "
        f"failed:",
        file=sys.stderr,
    )
    for report in corpus.failing:
        for message in report.all_failures():
            print(f"  {report.name}: {message}", file=sys.stderr)
        print(
            f"  shrink it: repro conform shrink --scenario "
            f"{report.name}",
            file=sys.stderr,
        )
    return 1


def _cmd_conform_corpus(args: argparse.Namespace) -> int:
    from repro.conformance import all_invariants

    with runtime_session(args):
        scenarios = _conform_corpus_for(args)
        print(f"{len(scenarios)} scenarios:")
        for sc in scenarios:
            plan = " +faults" if sc.fault_plan is not None else ""
            print(
                f"  {sc.name:<24} seed={sc.seed:<11} "
                f"{sc.num_sites:>3} x {sc.num_objects:<3} "
                f"U={sc.update_ratio:<4} {sc.topology}{plan}"
            )
        invariants = all_invariants()
        print(f"\n{len(invariants)} invariants:")
        for inv in invariants:
            print(f"  {inv.name:<30} {inv.description}")
    return 0


def _cmd_conform_shrink(args: argparse.Namespace) -> int:
    import os

    from repro.conformance import (
        default_corpus,
        load_artifact,
        oracle_predicate,
        run_instance,
        shrink_instance,
        write_artifact,
    )

    with runtime_session(args):
        if args.artifact is not None:
            if not os.path.exists(args.artifact):
                print(
                    f"no shrink artifact at {args.artifact}.\n"
                    f"Produce one with:  repro conform shrink --scenario "
                    f"NAME -o {args.artifact}\n"
                    f"or download the CI conformance job's shrunken-repro "
                    f"artifact.",
                    file=sys.stderr,
                )
                return 2
            data = load_artifact(args.artifact)
            print(data["summary"])
            report = run_instance(
                data["instance"],
                name="artifact",
                invariant_names=args.invariant,
            )
            if report.passed:
                print(
                    "the repro no longer fails on this build — bug fixed "
                    "(or environment-dependent)"
                )
                return 0
            print("the repro still fails:", file=sys.stderr)
            for message in report.all_failures():
                print(f"  {message}", file=sys.stderr)
            return 1

        if args.scenario is None:
            print(
                "nothing to shrink: pass --scenario NAME (see `repro "
                "conform corpus`) or --artifact FILE.",
                file=sys.stderr,
            )
            return 2
        matches = [
            sc for sc in default_corpus() if sc.name == args.scenario
        ]
        if not matches:
            names = ", ".join(sc.name for sc in default_corpus())
            print(
                f"unknown scenario {args.scenario!r}; corpus scenarios: "
                f"{names}",
                file=sys.stderr,
            )
            return 2
        scenario = matches[0]
        instance = scenario.build()
        predicate = oracle_predicate(args.invariant)
        if not predicate(instance):
            print(
                f"scenario {scenario.name} passes the oracle on this "
                f"build; nothing to shrink"
            )
            return 0
        result = shrink_instance(
            instance, predicate=predicate, scenario=scenario
        )
        print(result.summary())
        for message in result.failures:
            print(f"  {message}")
        out = args.out or "CONFORM_repro.json"
        path = write_artifact(result, out)
        print(f"repro artifact written to {path}")
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    command = getattr(args, "conform_command", None)
    handlers = {
        "run": _cmd_conform_run,
        "corpus": _cmd_conform_corpus,
        "shrink": _cmd_conform_shrink,
    }
    handler = handlers.get(command)
    if handler is None:
        print(
            "usage: repro conform {run,corpus,shrink} ...",
            file=sys.stderr,
        )
        return 2
    return handler(args)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "solve": _cmd_solve,
        "evaluate": _cmd_evaluate,
        "simulate": _cmd_simulate,
        "compare": _cmd_compare,
        "figures": _cmd_figures,
        "trace": _cmd_trace,
        "explain": _cmd_explain,
        "bench": _cmd_bench,
        "conform": _cmd_conform,
    }
    handler = handlers.get(args.command)
    if handler is None:
        parser.print_help()
        return 2
    try:
        return handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
