"""Command-line entry point: ``repro-experiments``.

Examples
--------
Reproduce one figure at CI scale::

    repro-experiments --figure fig1a

Reproduce everything at the paper's scale (slow!)::

    repro-experiments --all --profile paper
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import get_profile
from repro.experiments.figures import DEFAULT_SEED, FIGURES, run_figure
from repro.experiments.report import render_figure


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation figures of 'Static and Adaptive Data "
            "Replication Algorithms for Fast Information Access in Large "
            "Distributed Systems' (ICDCS 2000)."
        ),
    )
    parser.add_argument(
        "--figure",
        action="append",
        choices=sorted(FIGURES),
        help="figure id to reproduce (repeatable)",
    )
    parser.add_argument(
        "--all", action="store_true", help="reproduce every figure"
    )
    parser.add_argument(
        "--ablation",
        action="append",
        help="ablation id to run (repeatable); see --list-ablations",
    )
    parser.add_argument(
        "--list-ablations",
        action="store_true",
        help="list available ablation studies and exit",
    )
    parser.add_argument(
        "--verify-claims",
        action="store_true",
        help="check the paper's claims against the reproduced figures",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help=(
            "export every figure, ablation and the claim verdicts "
            "(JSON + rendered tables) into DIR and exit"
        ),
    )
    parser.add_argument(
        "--profile",
        default="",
        help="scale profile: quick (default) or paper",
    )
    parser.add_argument(
        "--scale",
        action="append",
        metavar="TIER",
        help=(
            "run the sparse large-instance path at TIER "
            "(small=128x1k, medium=512x10k, large=1024x10k; repeatable)"
        ),
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fan (instance x algorithm) runs out over N worker processes "
            "(default: serial, or $REPRO_PARALLEL); results are "
            "bit-identical to serial for the same seed"
        ),
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help=(
            "collect and print cost-kernel cache counters and per-phase "
            "timers after the run"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help=(
            "record an execution trace of the whole sweep (workers "
            "included) to FILE; inspect with `repro trace FILE`"
        ),
    )
    parser.add_argument(
        "--trace-format",
        choices=["chrome", "jsonl"],
        default="jsonl",
        help="trace file format: jsonl (default) or chrome (Perfetto)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"master seed (default {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--precision",
        type=int,
        default=2,
        help="decimal places in the rendered tables",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments.ablations import ABLATIONS, run_ablation
    from repro.experiments import parallel
    from repro.experiments.report import render_metrics
    from repro.utils.metrics import (
        disable_global_metrics,
        enable_global_metrics,
        global_metrics,
    )
    from repro.utils.tracing import (
        disable_global_tracing,
        enable_global_tracing,
        global_tracer,
    )

    args = build_parser().parse_args(argv)
    if args.list_ablations:
        for ablation_id in sorted(ABLATIONS):
            print(ablation_id)
        return 0
    figure_ids = sorted(FIGURES) if args.all else (args.figure or [])
    ablation_ids = args.ablation or []
    scale_tiers = args.scale or []
    if (
        not figure_ids
        and not ablation_ids
        and not scale_tiers
        and not args.verify_claims
        and not args.export
    ):
        build_parser().print_help()
        return 2
    profile = get_profile(args.profile)
    had_metrics = global_metrics() is not None
    if args.parallel is not None:
        parallel.configure(args.parallel)
    registry = enable_global_metrics() if args.metrics else None
    had_tracer = global_tracer() is not None
    tracer = enable_global_tracing() if args.trace else None
    try:
        if args.export:
            from repro.experiments.export import export_results

            manifest = export_results(args.export, profile, seed=args.seed)
            print(
                f"exported {len(manifest['files'])} files to {args.export} "
                f"(profile={manifest['profile']}, seed={manifest['seed']})"
            )
            if registry is not None:
                print(render_metrics(registry))
            return 0
        if args.verify_claims:
            from repro.experiments.claims import render_verdicts, verify_claims

            print(render_verdicts(verify_claims(profile, seed=args.seed)))
            print()
        for figure_id in figure_ids:
            result = run_figure(figure_id, profile, seed=args.seed)
            print(render_figure(result, precision=args.precision))
            print()
        for ablation_id in ablation_ids:
            result = run_ablation(ablation_id, profile)
            print(result.render(precision=args.precision))
            print()
        if scale_tiers:
            from repro.experiments.scale import run_scale

            for tier in scale_tiers:
                report = run_scale(tier, seed=args.seed)
                print(
                    f"scale[{tier}]: M={report['num_sites']} "
                    f"N={report['num_objects']} "
                    f"read_nnz={report['read_nnz']:,} "
                    f"write_nnz={report['write_nnz']:,}"
                )
                print(
                    f"  SRA savings={report['savings_percent']:.2f}% "
                    f"replicas=+{report['extra_replicas']} "
                    f"path={report['evaluation_path']} "
                    f"gen={report['generate_seconds']:.2f}s "
                    f"solve={report['solve_seconds']:.2f}s"
                )
                print()
        if registry is not None:
            print(render_metrics(registry))
        return 0
    finally:
        if tracer is not None:
            # Written even on failure so a crashed sweep leaves a trace.
            tracer.write(args.trace, format=args.trace_format)
            print(f"trace written to {args.trace} ({args.trace_format})")
            if not had_tracer:
                disable_global_tracing()
        if args.parallel is not None:
            parallel.configure(None)
        if registry is not None and not had_metrics:
            disable_global_metrics()


if __name__ == "__main__":
    sys.exit(main())
