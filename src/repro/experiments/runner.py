"""Command-line entry point: ``repro-experiments``.

Examples
--------
Reproduce one figure at CI scale::

    repro-experiments --figure fig1a

Reproduce everything at the paper's scale (slow!)::

    repro-experiments --all --profile paper

The cross-cutting flags (``--trace``, ``--metrics``, ``--parallel``,
``--openmetrics``/``--telemetry``, ``--faults``) come from the shared
runtime option layer and behave exactly as on ``repro`` subcommands.
``--profile`` keeps its domain meaning here — the *scale* profile
(quick/paper) — so the shared deterministic-profiler group is excluded.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.config import get_profile
from repro.experiments.figures import DEFAULT_SEED, FIGURES, run_figure
from repro.experiments.report import render_figure
from repro.runtime import GROUP_PROFILE, add_runtime_options, runtime_session
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation figures of 'Static and Adaptive Data "
            "Replication Algorithms for Fast Information Access in Large "
            "Distributed Systems' (ICDCS 2000)."
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    parser.add_argument(
        "--figure",
        action="append",
        choices=sorted(FIGURES),
        help="figure id to reproduce (repeatable)",
    )
    parser.add_argument(
        "--all", action="store_true", help="reproduce every figure"
    )
    parser.add_argument(
        "--ablation",
        action="append",
        help="ablation id to run (repeatable); see --list-ablations",
    )
    parser.add_argument(
        "--list-ablations",
        action="store_true",
        help="list available ablation studies and exit",
    )
    parser.add_argument(
        "--verify-claims",
        action="store_true",
        help="check the paper's claims against the reproduced figures",
    )
    parser.add_argument(
        "--export",
        metavar="DIR",
        default=None,
        help=(
            "export every figure, ablation and the claim verdicts "
            "(JSON + rendered tables) into DIR and exit"
        ),
    )
    parser.add_argument(
        "--profile",
        default="",
        help="scale profile: quick (default) or paper",
    )
    parser.add_argument(
        "--scale",
        action="append",
        metavar="TIER",
        help=(
            "run the sparse large-instance path at TIER "
            "(small=128x1k, medium=512x10k, large=1024x10k; repeatable)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        help=f"master seed (default {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--precision",
        type=int,
        default=2,
        help="decimal places in the rendered tables",
    )
    # --profile here selects the scale profile above; the shared
    # deterministic-profiler flags would collide, so that group is out
    add_runtime_options(parser, exclude=(GROUP_PROFILE,))
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.experiments.ablations import ABLATIONS, run_ablation
    from repro.experiments.report import render_metrics

    args = build_parser().parse_args(argv)
    if args.list_ablations:
        for ablation_id in sorted(ABLATIONS):
            print(ablation_id)
        return 0
    figure_ids = sorted(FIGURES) if args.all else (args.figure or [])
    ablation_ids = args.ablation or []
    scale_tiers = args.scale or []
    if (
        not figure_ids
        and not ablation_ids
        and not scale_tiers
        and not args.verify_claims
        and not args.export
    ):
        build_parser().print_help()
        return 2
    profile = get_profile(args.profile)
    with runtime_session(args) as ctx:
        registry = ctx.metrics
        if args.export:
            from repro.experiments.export import export_results

            manifest = export_results(args.export, profile, seed=args.seed)
            print(
                f"exported {len(manifest['files'])} files to {args.export} "
                f"(profile={manifest['profile']}, seed={manifest['seed']})"
            )
            if registry is not None:
                print(render_metrics(registry))
            return 0
        if args.verify_claims:
            from repro.experiments.claims import render_verdicts, verify_claims

            print(render_verdicts(verify_claims(profile, seed=args.seed)))
            print()
        for figure_id in figure_ids:
            result = run_figure(figure_id, profile, seed=args.seed)
            print(render_figure(result, precision=args.precision))
            print()
        for ablation_id in ablation_ids:
            result = run_ablation(ablation_id, profile)
            print(result.render(precision=args.precision))
            print()
        if scale_tiers:
            from repro.experiments.scale import run_scale

            for tier in scale_tiers:
                report = run_scale(tier, seed=args.seed)
                print(
                    f"scale[{tier}]: M={report['num_sites']} "
                    f"N={report['num_objects']} "
                    f"read_nnz={report['read_nnz']:,} "
                    f"write_nnz={report['write_nnz']:,}"
                )
                print(
                    f"  SRA savings={report['savings_percent']:.2f}% "
                    f"replicas=+{report['extra_replicas']} "
                    f"path={report['evaluation_path']} "
                    f"gen={report['generate_seconds']:.2f}s "
                    f"solve={report['solve_seconds']:.2f}s"
                )
                print()
        if registry is not None:
            print(render_metrics(registry))
        return 0


if __name__ == "__main__":
    sys.exit(main())
