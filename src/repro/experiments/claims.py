"""The paper's claims as executable checks.

`EXPERIMENTS.md` argues in prose that each figure's *shape* reproduces;
this module makes the argument executable: every claim of Section 6 is a
predicate over the reproduced figure data, and :func:`verify_claims`
returns a verdict table.  ``repro-experiments --verify-claims`` prints
it; the benchmark suite asserts the expected verdicts at the quick
profile.

Checks use tolerances because the points are means over few sampled
networks; a claim's check encodes the *trend*, not the paper's absolute
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.experiments.config import ScaleProfile, get_profile
from repro.experiments.figures import (
    DEFAULT_SEED,
    FigureResult,
    run_figure,
)
from repro.utils.tables import format_table

#: verdict labels
REPRODUCED = "REPRODUCED"
NOT_REPRODUCED = "NOT REPRODUCED"
SCALE_DEPENDENT = "SCALE-DEPENDENT"


@dataclass(frozen=True)
class ClaimResult:
    """Outcome of checking one claim."""

    claim_id: str
    description: str
    verdict: str
    detail: str


Check = Callable[[Dict[str, FigureResult]], Tuple[bool, str]]


def _series(fig: FigureResult, prefix: str) -> Dict[str, List[float]]:
    return {
        label: values
        for label, values in fig.series.items()
        if label.startswith(prefix)
    }


def _check_gra_dominates(figs: Dict[str, FigureResult]) -> Tuple[bool, str]:
    worst_gap = np.inf
    where = ""
    for fig_id in ("fig1a", "fig1c"):
        fig = figs[fig_id]
        for label, values in _series(fig, "GRA").items():
            sra = fig.series[label.replace("GRA", "SRA")]
            gap = float(np.mean(np.asarray(values) - np.asarray(sra)))
            if gap < worst_gap:
                worst_gap = gap
                where = f"{fig_id} {label}"
    ok = worst_gap >= -0.75
    return ok, f"min mean(GRA - SRA) = {worst_gap:+.2f} points ({where})"


def _check_sra_decays_gra_flat(
    figs: Dict[str, FigureResult]
) -> Tuple[bool, str]:
    fig = figs["fig1a"]
    ratios = sorted(
        {label.split("U=")[1] for label in fig.series},
        key=lambda s: float(s.rstrip("%")),
    )
    top = ratios[-1]
    sra = fig.series[f"SRA U={top}"]
    gra = fig.series[f"GRA U={top}"]
    sra_drop = sra[0] - sra[-1]
    gra_drop = gra[0] - gra[-1]
    ok = sra_drop >= gra_drop - 0.75
    return ok, (
        f"at U={top}: SRA drops {sra_drop:.2f} points across the sites "
        f"sweep vs GRA {gra_drop:.2f}"
    )


def _check_gra_exploits_capacity(
    figs: Dict[str, FigureResult]
) -> Tuple[bool, str]:
    fig = figs["fig1b"]
    ratios = sorted(
        {label.split("U=")[1] for label in fig.series},
        key=lambda s: float(s.rstrip("%")),
    )
    low = ratios[0]
    gra = fig.series[f"GRA U={low}"]
    ok = gra[-1] > gra[0]
    return ok, (
        f"GRA replicas at U={low}: {gra[0]:.0f} -> {gra[-1]:.0f} as sites "
        "grow"
    )


def _check_runtime_gap(figs: Dict[str, FigureResult]) -> Tuple[bool, str]:
    sra = figs["fig2a"]
    gra = figs["fig2b"]
    sra_mean = float(np.mean([np.mean(v) for v in sra.series.values()]))
    gra_mean = float(np.mean([np.mean(v) for v in gra.series.values()]))
    ratio = gra_mean / max(sra_mean, 1e-12)
    ok = ratio > 10.0
    return ok, (
        f"GRA/SRA mean runtime ratio {ratio:.0f}x (paper: 10^3-10^4 at "
        "full scale)"
    )


def _check_update_ratio_decay(
    figs: Dict[str, FigureResult]
) -> Tuple[bool, str]:
    fig = figs["fig3a"]
    details = []
    ok = True
    for label in ("SRA", "GRA"):
        values = fig.series[label]
        ok = ok and values[0] > values[-1]
        details.append(f"{label} {values[0]:.1f} -> {values[-1]:.1f}")
    return ok, "; ".join(details)


def _check_capacity_saturation(
    figs: Dict[str, FigureResult]
) -> Tuple[bool, str]:
    gra = figs["fig3b"].series["GRA"]
    first_step = gra[1] - gra[0]
    last_step = gra[-1] - gra[-2]
    ok = first_step >= last_step - 0.75 and gra[-1] >= gra[0] - 0.75
    return ok, (
        f"first capacity step buys {first_step:.2f} points, last buys "
        f"{last_step:.2f}"
    )


def _check_stale_scheme_degrades(
    figs: Dict[str, FigureResult]
) -> Tuple[bool, str]:
    current = figs["fig4b"].series["Current"]
    ok = current[0] > current[-1]
    return ok, (
        f"stale scheme under update drift: {current[0]:.1f}% -> "
        f"{current[-1]:.1f}%"
    )


def _check_agra_recovers(figs: Dict[str, FigureResult]) -> Tuple[bool, str]:
    gains = []
    for fig_id in ("fig4a", "fig4b", "fig4c"):
        fig = figs[fig_id]
        current = np.asarray(fig.series["Current"])
        agra = np.asarray(fig.series["Current + AGRA"])
        gains.append(float(np.mean(agra - current)))
    ok = all(g > 0 for g in gains)
    return ok, (
        "mean AGRA gain over Current: "
        + ", ".join(
            f"{fig_id}={g:+.2f}" for fig_id, g in
            zip(("fig4a", "fig4b", "fig4c"), gains)
        )
    )


def _check_agra_beats_current_gra(
    figs: Dict[str, FigureResult]
) -> Tuple[bool, str]:
    fig = figs["fig4c"]
    agra_labels = [l for l in fig.series if l.startswith("AGRA +")]
    static_labels = [l for l in fig.series if l.startswith("Current +")
                     and "AGRA" not in l]
    agra_best = np.max(
        [np.mean(fig.series[l]) for l in agra_labels]
    )
    static_best = np.max(
        [np.mean(fig.series[l]) for l in static_labels]
    )
    ok = agra_best >= static_best - 0.5
    return ok, (
        f"best AGRA+mini mean {agra_best:.2f}% vs best Current+GRA "
        f"{static_best:.2f}% (fig4c)"
    )


def _check_mix_shift_helps(
    figs: Dict[str, FigureResult]
) -> Tuple[bool, str]:
    fig = figs["fig4c"]
    bad = [
        label
        for label, values in fig.series.items()
        if not values[-1] > values[0] - 0.75
    ]
    ok = not bad
    return ok, (
        "all policies improve toward the all-reads end"
        if ok
        else f"flat/declining: {bad}"
    )


@dataclass(frozen=True)
class Claim:
    claim_id: str
    description: str
    figures: Tuple[str, ...]
    check: Check
    scale_dependent: bool = False


CLAIMS: Tuple[Claim, ...] = (
    Claim(
        "gra-dominates",
        "GRA's savings dominate SRA's across system sizes",
        ("fig1a", "fig1c"),
        _check_gra_dominates,
    ),
    Claim(
        "sra-decays",
        "SRA's savings decay with sites at high U; GRA stays flatter",
        ("fig1a",),
        _check_sra_decays_gra_flat,
    ),
    Claim(
        "gra-exploits-capacity",
        "GRA's replica count grows with added sites (low U)",
        ("fig1b",),
        _check_gra_exploits_capacity,
    ),
    Claim(
        "runtime-gap",
        "GRA is orders of magnitude slower than SRA",
        ("fig2a", "fig2b"),
        _check_runtime_gap,
        scale_dependent=True,
    ),
    Claim(
        "update-decay",
        "savings decay steeply with the update ratio",
        ("fig3a",),
        _check_update_ratio_decay,
    ),
    Claim(
        "capacity-saturation",
        "capacity helps then saturates",
        ("fig3b",),
        _check_capacity_saturation,
    ),
    Claim(
        "stale-degrades",
        "a stale static scheme degrades under update drift",
        ("fig4b",),
        _check_stale_scheme_degrades,
    ),
    Claim(
        "agra-recovers",
        "AGRA recovers savings the drift destroyed",
        ("fig4a", "fig4b", "fig4c"),
        _check_agra_recovers,
    ),
    Claim(
        "agra-vs-current-gra",
        "AGRA + mini-GRA matches/beats GRA re-runs from the current scheme",
        ("fig4c",),
        _check_agra_beats_current_gra,
        scale_dependent=True,
    ),
    Claim(
        "mix-shift",
        "savings rise as changes shift from updates to reads",
        ("fig4c",),
        _check_mix_shift_helps,
    ),
)


def verify_claims(
    profile: Optional[ScaleProfile] = None,
    seed: int = DEFAULT_SEED,
    claim_ids: Optional[List[str]] = None,
) -> List[ClaimResult]:
    """Check every (or the selected) claim against reproduced figures."""
    profile = profile or get_profile()
    selected = [
        claim
        for claim in CLAIMS
        if claim_ids is None or claim.claim_id in claim_ids
    ]
    if claim_ids is not None:
        known = {claim.claim_id for claim in CLAIMS}
        unknown = set(claim_ids) - known
        if unknown:
            raise ValidationError(
                f"unknown claims: {sorted(unknown)}; choose from "
                f"{sorted(known)}"
            )
    needed = sorted({fig for claim in selected for fig in claim.figures})
    figures = {
        fig_id: run_figure(fig_id, profile, seed=seed) for fig_id in needed
    }
    results: List[ClaimResult] = []
    for claim in selected:
        ok, detail = claim.check(figures)
        if ok:
            verdict = REPRODUCED
        elif claim.scale_dependent:
            verdict = SCALE_DEPENDENT
        else:
            verdict = NOT_REPRODUCED
        results.append(
            ClaimResult(claim.claim_id, claim.description, verdict, detail)
        )
    return results


def render_verdicts(results: List[ClaimResult]) -> str:
    return format_table(
        ["claim", "verdict", "evidence"],
        [[r.claim_id, r.verdict, r.detail] for r in results],
        title="Paper claims, checked against the reproduced figures",
    )


__all__ = [
    "REPRODUCED",
    "NOT_REPRODUCED",
    "SCALE_DEPENDENT",
    "Claim",
    "ClaimResult",
    "CLAIMS",
    "verify_claims",
    "render_verdicts",
]
