"""Ablation studies of the design choices Section 4 and 5 argue for.

These are not figures of the paper; they quantify the paper's *design
rationale* with the same harness discipline (instance averaging, seeded
reproducibility):

* ``gra-design``   — GRA with each Section 4 design choice removed:
  random instead of SRA-seeded initialisation, simple (SGA) instead of
  ``(mu+lambda)`` selection, no elitism;
* ``write-penalty`` — SRA's Eq. 5 update term vs a read-only greedy as
  the update ratio grows;
* ``strategies``    — one placement under the three write/consistency
  strategies across update ratios;
* ``metaheuristics`` — SRA / hill climbing / simulated annealing / GRA
  head-to-head;
* ``hardening``     — the NTC premium of forcing >= 2 replicas per
  object, and the failure impact it buys down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms import (
    GRA,
    HillClimbing,
    ReadOnlyGreedy,
    SRA,
    SimulatedAnnealing,
)
from repro.core import CostModel
from repro.core.availability import expected_failure_impact, harden_scheme
from repro.core.strategies import WriteStrategy, total_cost
from repro.errors import ValidationError
from repro.experiments.config import ScaleProfile, get_profile
from repro.experiments.harness import average_static_runs
from repro.utils.rng import spawn_generators
from repro.utils.tables import format_table
from repro.workload.generator import generate_instance
from repro.workload.spec import WorkloadSpec

ABLATION_SEED = 31_000


@dataclass
class AblationResult:
    """A rendered-table-shaped result (categorical x axis)."""

    ablation_id: str
    title: str
    headers: List[str]
    rows: List[List[object]]
    meta: Dict[str, object] = field(default_factory=dict)

    def render(self, precision: int = 3) -> str:
        return format_table(
            self.headers,
            self.rows,
            precision=precision,
            title=f"[{self.ablation_id}] {self.title}",
        )

    def column(self, header: str) -> List[object]:
        """One column by header name (for assertions in tests/benches)."""
        try:
            idx = self.headers.index(header)
        except ValueError:
            raise ValidationError(
                f"no column {header!r}; have {self.headers}"
            ) from None
        return [row[idx] for row in self.rows]


def _base_spec(profile: ScaleProfile, update_ratio: float = 0.05) -> WorkloadSpec:
    return WorkloadSpec(
        num_sites=profile.fig3a_num_sites,
        num_objects=profile.fig3a_num_objects,
        update_ratio=update_ratio,
        capacity_ratio=0.15,
    )


def ablate_gra_design(
    profile: Optional[ScaleProfile] = None, seed: int = ABLATION_SEED
) -> AblationResult:
    """Remove one Section 4 design choice at a time."""
    profile = profile or get_profile()
    factories = {
        "GRA (paper)": lambda s: GRA(params=profile.gra, rng=s),
        "random init": lambda s: GRA(
            params=profile.gra.with_overrides(seeded_init=False), rng=s
        ),
        "simple selection": lambda s: GRA(
            params=profile.gra.with_overrides(selection="simple"), rng=s
        ),
        "no elitism": lambda s: GRA(
            params=profile.gra.with_overrides(elitism=False), rng=s
        ),
    }
    averages = average_static_runs(
        _base_spec(profile), factories, profile.instances, seed=seed
    )
    rows = [
        [label, avg.savings_percent, avg.extra_replicas,
         avg.runtime_seconds]
        for label, avg in averages.items()
    ]
    return AblationResult(
        ablation_id="gra-design",
        title="GRA design choices ablated one at a time (U=5%, C=15%)",
        headers=["variant", "savings %", "replicas", "seconds"],
        rows=rows,
        meta={"profile": profile.name, "instances": profile.instances},
    )


def ablate_write_penalty(
    profile: Optional[ScaleProfile] = None, seed: int = ABLATION_SEED
) -> AblationResult:
    """Eq. 5's update term vs read-only greed across update ratios."""
    profile = profile or get_profile()
    rows = []
    for ratio in (0.02, 0.10, 0.20, 0.40):
        averages = average_static_runs(
            _base_spec(profile, update_ratio=ratio),
            {
                "SRA": lambda s: SRA(),
                "ReadOnlyGreedy": lambda s: ReadOnlyGreedy(),
            },
            profile.instances,
            seed=seed + int(ratio * 1000),
        )
        rows.append(
            [
                f"{ratio * 100:g}%",
                averages["SRA"].savings_percent,
                averages["ReadOnlyGreedy"].savings_percent,
            ]
        )
    return AblationResult(
        ablation_id="write-penalty",
        title="Eq. 5 update penalty vs read-only greed",
        headers=["update ratio", "SRA savings %", "read-only savings %"],
        rows=rows,
        meta={"profile": profile.name},
    )


def ablate_strategies(
    profile: Optional[ScaleProfile] = None, seed: int = ABLATION_SEED
) -> AblationResult:
    """One placement under three write strategies across update ratios."""
    profile = profile or get_profile()
    rows = []
    for ratio in (0.01, 0.05, 0.20):
        instance = generate_instance(
            _base_spec(profile, update_ratio=ratio), rng=seed
        )
        scheme = SRA().run(instance).scheme
        rows.append(
            [
                f"{ratio * 100:g}%",
                *(
                    total_cost(instance, scheme, strategy)
                    for strategy in WriteStrategy
                ),
            ]
        )
    return AblationResult(
        ablation_id="strategies",
        title="Same placement under three write strategies (analytic NTC)",
        headers=["update ratio", *(s.value for s in WriteStrategy)],
        rows=rows,
        meta={"profile": profile.name},
    )


def ablate_metaheuristics(
    profile: Optional[ScaleProfile] = None, seed: int = ABLATION_SEED
) -> AblationResult:
    """SRA / hill climbing / annealing / GRA on the same instances."""
    profile = profile or get_profile()
    factories = {
        "SRA": lambda s: SRA(),
        "HillClimbing": lambda s: HillClimbing(rng=s),
        "SimulatedAnnealing": lambda s: SimulatedAnnealing(
            steps=2000, rng=s
        ),
        "GRA": lambda s: GRA(params=profile.gra, rng=s),
    }
    averages = average_static_runs(
        _base_spec(profile), factories, profile.instances, seed=seed + 7
    )
    rows = [
        [label, avg.savings_percent, avg.extra_replicas,
         avg.runtime_seconds]
        for label, avg in averages.items()
    ]
    return AblationResult(
        ablation_id="metaheuristics",
        title="Metaheuristic comparators (U=5%, C=15%)",
        headers=["algorithm", "savings %", "replicas", "seconds"],
        rows=rows,
        meta={"profile": profile.name},
    )


def ablate_hardening(
    profile: Optional[ScaleProfile] = None, seed: int = ABLATION_SEED
) -> AblationResult:
    """What does >= 2 replicas per object cost, and what does it buy?"""
    profile = profile or get_profile()
    rows = []
    for gen_rng in spawn_generators(seed + 13, profile.instances):
        instance = generate_instance(
            _base_spec(profile).with_overrides(capacity_ratio=0.3),
            rng=gen_rng,
        )
        model = CostModel(instance)
        scheme = SRA().run(instance, model).scheme
        before = expected_failure_impact(instance, scheme)
        hardened = harden_scheme(instance, scheme, min_degree=2, model=model)
        after = expected_failure_impact(instance, hardened.scheme)
        premium = (
            100.0 * hardened.cost_premium / model.d_prime()
            if model.d_prime()
            else 0.0
        )
        rows.append(
            [
                hardened.added_replicas,
                premium,
                before["worst_lost_objects"],
                after["worst_lost_objects"],
                before["mean_degraded_percent"],
                after["mean_degraded_percent"],
            ]
        )
    mean_row = ["MEAN", *[
        float(np.mean([row[i] for row in rows])) for i in range(1, 6)
    ]]
    table_rows = [[f"net {i}", *row[1:]] for i, row in enumerate(rows)]
    table_rows.append(mean_row)
    return AblationResult(
        ablation_id="hardening",
        title="Cost and benefit of forcing >= 2 replicas per object",
        headers=[
            "network",
            "NTC premium %",
            "worst lost objs (before)",
            "worst lost objs (after)",
            "mean degraded % (before)",
            "mean degraded % (after)",
        ],
        rows=table_rows,
        meta={"profile": profile.name},
    )


#: registry used by the CLI and the benchmarks
ABLATIONS: Dict[str, Callable[..., AblationResult]] = {
    "gra-design": ablate_gra_design,
    "write-penalty": ablate_write_penalty,
    "strategies": ablate_strategies,
    "metaheuristics": ablate_metaheuristics,
    "hardening": ablate_hardening,
}


def run_ablation(
    ablation_id: str,
    profile: Optional[ScaleProfile] = None,
    seed: int = ABLATION_SEED,
) -> AblationResult:
    """Run one ablation by id."""
    try:
        fn = ABLATIONS[ablation_id]
    except KeyError:
        raise ValidationError(
            f"unknown ablation {ablation_id!r}; choose from "
            f"{sorted(ABLATIONS)}"
        ) from None
    return fn(profile, seed)


__all__ = [
    "AblationResult",
    "ABLATIONS",
    "run_ablation",
    "ablate_gra_design",
    "ablate_write_penalty",
    "ablate_strategies",
    "ablate_metaheuristics",
    "ablate_hardening",
]
