"""Large-instance ``--scale`` profile: sparse problems at M~1000, N~10k.

The paper's Section 6.1 recipe draws a read count for *every* (site,
object) pair, which bakes a dense ``(M, N)`` matrix into the generator
itself.  Real traces are overwhelmingly zero per pair — a site touches a
small working set — so the scale generator draws each site's working set
(``reads_per_site`` objects) and each object's writer set
(``writers_per_object`` sites) directly in coordinate form and never
materialises a dense count matrix: peak memory is ``O(nnz + M^2)``
(the cost matrix is inherently dense), not ``O(M * N)``.

The rest of the recipe mirrors Section 6.1: per-object update totals are
``update_ratio`` times the object's total reads, jittered to
``U[T/2, 3T/2]`` and multinomial-scattered over the writer set; sizes
are uniform with mean ``size_mean``; capacities and primaries use the
same feasible-by-construction assignment as the dense generator.

``SCALE_TIERS`` names the benchmark grid of ``BENCH_scale.json``
(M in {128, 512, 1024}, N in {1k, 10k}); ``run_scale`` backs the
``repro-experiments --scale`` CLI flag.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.network.generators import paper_cost_matrix
from repro.utils.rng import SeedLike, as_generator
from repro.workload.generator import _assign_primaries
from repro.workload.sparse import SparseCounts, SparseProblem


@dataclass(frozen=True)
class ScaleSpec:
    """Knobs of one sparse scale instance (Section 6.1, sparsified)."""

    num_sites: int
    num_objects: int
    reads_per_site: int = 64
    read_low: int = 1
    read_high: int = 40
    update_ratio: float = 0.05
    writers_per_object: int = 8
    size_mean: int = 35
    capacity_ratio: float = 0.3
    cost_low: int = 1
    cost_high: int = 10

    def __post_init__(self) -> None:
        if self.num_sites < 2:
            raise ValidationError(
                f"num_sites must be >= 2, got {self.num_sites}"
            )
        if self.num_objects < 1:
            raise ValidationError(
                f"num_objects must be >= 1, got {self.num_objects}"
            )
        if self.reads_per_site < 1:
            raise ValidationError(
                f"reads_per_site must be >= 1, got {self.reads_per_site}"
            )
        if self.writers_per_object < 1:
            raise ValidationError(
                "writers_per_object must be >= 1, got "
                f"{self.writers_per_object}"
            )
        if not 1 <= self.read_low <= self.read_high:
            raise ValidationError(
                f"need 1 <= read_low <= read_high, got "
                f"[{self.read_low}, {self.read_high}]"
            )
        if not 0.0 <= self.update_ratio:
            raise ValidationError(
                f"update_ratio must be >= 0, got {self.update_ratio}"
            )
        if self.size_mean < 1:
            raise ValidationError(
                f"size_mean must be >= 1, got {self.size_mean}"
            )
        if self.capacity_ratio <= 0.0:
            raise ValidationError(
                f"capacity_ratio must be > 0, got {self.capacity_ratio}"
            )


#: benchmark tiers of BENCH_scale.json: name -> (num_sites, num_objects)
SCALE_TIERS: Dict[str, Tuple[int, int]] = {
    "small": (128, 1_000),
    "medium": (512, 10_000),
    "large": (1_024, 10_000),
}


def generate_scale_problem(
    spec: ScaleSpec, rng: SeedLike = None
) -> SparseProblem:
    """One sparse DRP problem following the sparsified 6.1 recipe."""
    gen = as_generator(rng)
    m, n = spec.num_sites, spec.num_objects

    cost = paper_cost_matrix(m, spec.cost_low, spec.cost_high, gen)

    # Reads: each site draws a working set without replacement, one
    # count per member — COO triplets straight into CSR.
    per_site = min(spec.reads_per_site, n)
    read_rows = np.repeat(np.arange(m, dtype=np.int64), per_site)
    read_cols = np.empty(m * per_site, dtype=np.int64)
    for i in range(m):
        read_cols[i * per_site:(i + 1) * per_site] = gen.choice(
            n, size=per_site, replace=False
        )
    read_vals = gen.integers(
        spec.read_low, spec.read_high + 1, size=m * per_site
    ).astype(np.int64)
    reads = SparseCounts.from_coo((m, n), read_rows, read_cols, read_vals)

    # Writes: per-object jittered update totals scattered over a small
    # writer set (the sparse analogue of _scatter_counts over all sites).
    total_reads = reads.column_sums()
    writers_n = min(spec.writers_per_object, m)
    w_rows: List[np.ndarray] = []
    w_cols: List[np.ndarray] = []
    w_vals: List[np.ndarray] = []
    uniform = np.full(writers_n, 1.0 / writers_n)
    for k in range(n):
        base = spec.update_ratio * float(total_reads[k])
        if base <= 0:
            continue
        total_updates = int(
            round(gen.uniform(base / 2.0, 3.0 * base / 2.0))
        )
        if total_updates <= 0:
            continue
        writers = gen.choice(m, size=writers_n, replace=False)
        counts = gen.multinomial(total_updates, uniform)
        nz = counts > 0
        w_rows.append(writers[nz].astype(np.int64))
        w_cols.append(np.full(int(nz.sum()), k, dtype=np.int64))
        w_vals.append(counts[nz].astype(np.int64))
    if w_rows:
        writes = SparseCounts.from_coo(
            (m, n),
            np.concatenate(w_rows),
            np.concatenate(w_cols),
            np.concatenate(w_vals),
        )
    else:
        writes = SparseCounts.from_coo(
            (m, n),
            np.empty(0, np.int64),
            np.empty(0, np.int64),
            np.empty(0, np.int64),
        )

    sizes = gen.integers(1, 2 * spec.size_mean, size=n).astype(np.int64)

    total_size = float(sizes.sum())
    cap_low = spec.capacity_ratio * total_size / 2.0
    cap_high = 3.0 * spec.capacity_ratio * total_size / 2.0
    capacities = np.ceil(gen.uniform(cap_low, cap_high, size=m)).astype(
        np.int64
    )
    primaries = _assign_primaries(sizes, capacities, gen)

    return SparseProblem(
        cost=cost,
        sizes=sizes,
        capacities=capacities,
        reads=reads,
        writes=writes,
        primaries=primaries,
    )


def run_scale(
    tier: str,
    seed: int = 7,
    spec: Optional[ScaleSpec] = None,
) -> Dict[str, object]:
    """Generate one tier's sparse problem, run SRA, report the outcome.

    Backs ``repro-experiments --scale TIER``.  Returns a flat JSON-able
    dict (sizes, nnz, SRA cost/savings, wall-clock seconds).
    """
    from repro.runtime.registry import default_registry

    if spec is None:
        if tier not in SCALE_TIERS:
            raise ValidationError(
                f"unknown scale tier {tier!r}; "
                f"expected one of {sorted(SCALE_TIERS)}"
            )
        m, n = SCALE_TIERS[tier]
        spec = ScaleSpec(num_sites=m, num_objects=n)
    started = time.perf_counter()
    problem = generate_scale_problem(spec, rng=seed)
    generated = time.perf_counter()
    # the registry's sparse-capable solver (only SRA declares it today)
    result = default_registry().create("sra").run(problem)
    solved = time.perf_counter()
    return {
        "tier": tier,
        "num_sites": spec.num_sites,
        "num_objects": spec.num_objects,
        "read_nnz": problem.reads.nnz,
        "write_nnz": problem.writes.nnz,
        "total_cost": result.total_cost,
        "d_prime": result.d_prime,
        "savings_percent": result.savings_percent,
        "extra_replicas": result.extra_replicas,
        "evaluation_path": result.stats.get("evaluation_path"),
        "generate_seconds": generated - started,
        "solve_seconds": solved - generated,
        "seed": seed,
    }


__all__ = [
    "ScaleSpec",
    "SCALE_TIERS",
    "generate_scale_problem",
    "run_scale",
]
