"""Definitions of every figure in Section 6.

Each ``figN`` function reproduces one figure as a :class:`FigureResult` —
the x axis, and one y series per legend entry — at the requested scale
profile.  Figures that share a parameter sweep (1a/1b/2a/2b share the
sites sweep; 1c/1d the objects sweep; 4a/4d the reads-increase sweep)
share one cached computation, keyed by profile name and master seed, so
regenerating a whole figure family costs one sweep.

Quality is reported exactly as in the paper: the mean percentage of NTC
saved relative to the primary-only allocation over ``profile.instances``
independently generated networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.agra.policies import AdaptationOutcome, run_adaptation
from repro.algorithms.base import AlgorithmResult
from repro.algorithms.gra.engine import GRA
from repro.algorithms.sra import SRA
from repro.core.cost import CostModel
from repro.errors import ValidationError
from repro.experiments.config import ScaleProfile, get_profile
from repro.experiments.harness import InstanceAverages, average_static_runs
from repro.experiments.parallel import GRAFactory, SRAFactory
from repro.utils.rng import spawn_seeds
from repro.utils.tables import format_series
from repro.workload.generator import generate_instance
from repro.workload.mutation import apply_pattern_change, detect_changed_objects
from repro.workload.spec import WorkloadSpec

#: master seed of the whole evaluation; change to re-roll every network
DEFAULT_SEED = 20_000


@dataclass
class FigureResult:
    """One reproduced figure: x axis plus one y series per legend entry."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: List[float]
    series: Dict[str, List[float]]
    meta: Dict[str, object] = field(default_factory=dict)

    def render(self, precision: int = 2) -> str:
        header = f"[{self.figure_id}] {self.title}  (y: {self.y_label})"
        return format_series(
            self.x_label,
            self.x_values,
            self.series,
            precision=precision,
            title=header,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "figure_id": self.figure_id,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "x_values": list(self.x_values),
            "series": {k: list(v) for k, v in self.series.items()},
            "meta": dict(self.meta),
        }


# --------------------------------------------------------------------- #
# shared sweeps (cached)
# --------------------------------------------------------------------- #
_CACHE: Dict[Tuple[str, str, int], object] = {}


def clear_cache() -> None:
    """Drop all cached sweeps (mostly for tests)."""
    _CACHE.clear()


def _static_factories(profile: ScaleProfile):
    """SRA + GRA factories used by every static sweep.

    Instances of picklable factory classes (not lambdas) so the sweeps
    can fan out over worker processes under ``--parallel``.
    """
    return {
        "SRA": SRAFactory(),
        "GRA": GRAFactory(profile.gra),
    }


StaticSweep = Dict[Tuple[float, int], Dict[str, InstanceAverages]]


def _sites_sweep(profile: ScaleProfile, seed: int) -> StaticSweep:
    """Static algorithms over (update ratio, number of sites)."""
    key = ("sites", profile.name, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached  # type: ignore[return-value]
    sweep: StaticSweep = {}
    point_seeds = spawn_seeds(
        seed, len(profile.fig1_update_ratios) * len(profile.fig1_sites)
    )
    idx = 0
    for ratio in profile.fig1_update_ratios:
        for num_sites in profile.fig1_sites:
            spec = WorkloadSpec(
                num_sites=num_sites,
                num_objects=profile.fig1_num_objects,
                update_ratio=ratio,
                capacity_ratio=profile.fig1_capacity_ratio,
            )
            sweep[(ratio, num_sites)] = average_static_runs(
                spec,
                _static_factories(profile),
                profile.instances,
                seed=point_seeds[idx],
            )
            idx += 1
    _CACHE[key] = sweep
    return sweep


def _objects_sweep(profile: ScaleProfile, seed: int) -> StaticSweep:
    """Static algorithms over (update ratio, number of objects)."""
    key = ("objects", profile.name, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached  # type: ignore[return-value]
    sweep: StaticSweep = {}
    point_seeds = spawn_seeds(
        seed + 1,
        len(profile.fig1_update_ratios) * len(profile.fig1c_objects),
    )
    idx = 0
    for ratio in profile.fig1_update_ratios:
        for num_objects in profile.fig1c_objects:
            spec = WorkloadSpec(
                num_sites=profile.fig1c_num_sites,
                num_objects=num_objects,
                update_ratio=ratio,
                capacity_ratio=profile.fig1_capacity_ratio,
            )
            sweep[(ratio, num_objects)] = average_static_runs(
                spec,
                _static_factories(profile),
                profile.instances,
                seed=point_seeds[idx],
            )
            idx += 1
    _CACHE[key] = sweep
    return sweep


def _ratio_label(ratio: float) -> str:
    return f"U={ratio * 100:g}%"


def _series_from_sweep(
    sweep: StaticSweep,
    ratios: Sequence[float],
    x_values: Sequence[int],
    metric: str,
) -> Dict[str, List[float]]:
    series: Dict[str, List[float]] = {}
    for algorithm in ("SRA", "GRA"):
        for ratio in ratios:
            label = f"{algorithm} {_ratio_label(ratio)}"
            series[label] = [
                float(getattr(sweep[(ratio, x)][algorithm], metric))
                for x in x_values
            ]
    return series


# --------------------------------------------------------------------- #
# Figures 1(a)-(d), 2(a)-(b): static algorithms
# --------------------------------------------------------------------- #
def fig1a(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 1(a): % NTC savings versus the number of sites."""
    profile = profile or get_profile()
    sweep = _sites_sweep(profile, seed)
    return FigureResult(
        figure_id="fig1a",
        title="Savings in network cost versus the number of sites",
        x_label="sites",
        y_label="% NTC saved",
        x_values=list(profile.fig1_sites),
        series=_series_from_sweep(
            sweep, profile.fig1_update_ratios, profile.fig1_sites,
            "savings_percent",
        ),
        meta={"profile": profile.name, "objects": profile.fig1_num_objects},
    )


def fig1b(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 1(b): replicas created versus the number of sites."""
    profile = profile or get_profile()
    sweep = _sites_sweep(profile, seed)
    return FigureResult(
        figure_id="fig1b",
        title="Number of replicas generated versus the number of sites",
        x_label="sites",
        y_label="replicas beyond primaries",
        x_values=list(profile.fig1_sites),
        series=_series_from_sweep(
            sweep, profile.fig1_update_ratios, profile.fig1_sites,
            "extra_replicas",
        ),
        meta={"profile": profile.name, "objects": profile.fig1_num_objects},
    )


def fig1c(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 1(c): % NTC savings versus the number of objects."""
    profile = profile or get_profile()
    sweep = _objects_sweep(profile, seed)
    return FigureResult(
        figure_id="fig1c",
        title="Savings in network cost versus the number of objects",
        x_label="objects",
        y_label="% NTC saved",
        x_values=list(profile.fig1c_objects),
        series=_series_from_sweep(
            sweep, profile.fig1_update_ratios, profile.fig1c_objects,
            "savings_percent",
        ),
        meta={"profile": profile.name, "sites": profile.fig1c_num_sites},
    )


def fig1d(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 1(d): replicas created versus the number of objects."""
    profile = profile or get_profile()
    sweep = _objects_sweep(profile, seed)
    return FigureResult(
        figure_id="fig1d",
        title="Number of replicas generated versus the number of objects",
        x_label="objects",
        y_label="replicas beyond primaries",
        x_values=list(profile.fig1c_objects),
        series=_series_from_sweep(
            sweep, profile.fig1_update_ratios, profile.fig1c_objects,
            "extra_replicas",
        ),
        meta={"profile": profile.name, "sites": profile.fig1c_num_sites},
    )


def fig2a(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 2(a): SRA execution time versus the number of sites."""
    profile = profile or get_profile()
    sweep = _sites_sweep(profile, seed)
    series = {
        f"SRA {_ratio_label(ratio)}": [
            sweep[(ratio, m)]["SRA"].runtime_seconds
            for m in profile.fig1_sites
        ]
        for ratio in profile.fig1_update_ratios
    }
    return FigureResult(
        figure_id="fig2a",
        title="Execution time of SRA versus the number of sites",
        x_label="sites",
        y_label="seconds",
        x_values=list(profile.fig1_sites),
        series=series,
        meta={"profile": profile.name},
    )


def fig2b(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 2(b): GRA execution time versus the number of sites."""
    profile = profile or get_profile()
    sweep = _sites_sweep(profile, seed)
    series = {
        f"GRA {_ratio_label(ratio)}": [
            sweep[(ratio, m)]["GRA"].runtime_seconds
            for m in profile.fig1_sites
        ]
        for ratio in profile.fig1_update_ratios
    }
    return FigureResult(
        figure_id="fig2b",
        title="Execution time of GRA versus the number of sites",
        x_label="sites",
        y_label="seconds",
        x_values=list(profile.fig1_sites),
        series=series,
        meta={"profile": profile.name},
    )


# --------------------------------------------------------------------- #
# Figures 3(a)-(b): update ratio and capacity
# --------------------------------------------------------------------- #
def fig3a(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 3(a): % NTC savings versus the update ratio."""
    profile = profile or get_profile()
    key = ("fig3a", profile.name, seed)
    cached = _CACHE.get(key)
    if cached is None:
        cached = {}
        point_seeds = spawn_seeds(seed + 2, len(profile.fig3a_update_ratios))
        for ratio, pseed in zip(profile.fig3a_update_ratios, point_seeds):
            spec = WorkloadSpec(
                num_sites=profile.fig3a_num_sites,
                num_objects=profile.fig3a_num_objects,
                update_ratio=ratio,
                capacity_ratio=profile.fig1_capacity_ratio,
            )
            cached[ratio] = average_static_runs(
                spec, _static_factories(profile), profile.instances,
                seed=pseed,
            )
        _CACHE[key] = cached
    x_values = [ratio * 100.0 for ratio in profile.fig3a_update_ratios]
    series = {
        algorithm: [
            cached[ratio][algorithm].savings_percent
            for ratio in profile.fig3a_update_ratios
        ]
        for algorithm in ("SRA", "GRA")
    }
    return FigureResult(
        figure_id="fig3a",
        title="Savings in network cost versus the update ratio",
        x_label="update ratio (%)",
        y_label="% NTC saved",
        x_values=x_values,
        series=series,
        meta={"profile": profile.name},
    )


def fig3b(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 3(b): % NTC savings versus the capacity of sites."""
    profile = profile or get_profile()
    key = ("fig3b", profile.name, seed)
    cached = _CACHE.get(key)
    if cached is None:
        cached = {}
        point_seeds = spawn_seeds(
            seed + 3, len(profile.fig3b_capacity_ratios)
        )
        for cap, pseed in zip(profile.fig3b_capacity_ratios, point_seeds):
            spec = WorkloadSpec(
                num_sites=profile.fig3a_num_sites,
                num_objects=profile.fig3a_num_objects,
                update_ratio=profile.fig3b_update_ratio,
                capacity_ratio=cap,
            )
            cached[cap] = average_static_runs(
                spec, _static_factories(profile), profile.instances,
                seed=pseed,
            )
        _CACHE[key] = cached
    x_values = [cap * 100.0 for cap in profile.fig3b_capacity_ratios]
    series = {
        algorithm: [
            cached[cap][algorithm].savings_percent
            for cap in profile.fig3b_capacity_ratios
        ]
        for algorithm in ("SRA", "GRA")
    }
    return FigureResult(
        figure_id="fig3b",
        title="Savings in network cost versus the capacity of sites",
        x_label="capacity ratio (%)",
        y_label="% NTC saved",
        x_values=x_values,
        series=series,
        meta={"profile": profile.name},
    )


# --------------------------------------------------------------------- #
# Figures 4(a)-(d): AGRA under pattern change
# --------------------------------------------------------------------- #
def _policy_specs(profile: ScaleProfile) -> List[Tuple[str, str, int]]:
    """(label, kind, generations) for every Fig. 4 legend entry."""
    mini1, mini2 = profile.fig4_mini_generations
    static1, static2 = profile.fig4_static_generations
    return [
        ("Current", "current", 0),
        ("Current + AGRA", "agra", 0),
        (f"AGRA + {mini1} GRA", "agra", mini1),
        (f"AGRA + {mini2} GRA", "agra", mini2),
        (f"Current + {static1} GRA", "current+gra", static1),
        (f"Current + {static2} GRA", "current+gra", static2),
        (f"{static2} GRA", "fresh-gra", static2),
    ]


AdaptiveSweep = Dict[float, Dict[str, Tuple[float, float]]]


def _adaptive_sweep(
    profile: ScaleProfile,
    seed: int,
    x_values: Sequence[float],
    sweep_name: str,
    drift_of_x: Callable[[float], Tuple[float, float]],
) -> AdaptiveSweep:
    """Shared machinery of figures 4(a)-(d).

    For every instance: run GRA on the original patterns (keeping its final
    population), then for every x drift the patterns with
    ``object_share, read_share = drift_of_x(x)`` and run every policy.
    Returns mean ``(savings %, runtime seconds)`` per policy per x.
    """
    key = (f"fig4-{sweep_name}", profile.name, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached  # type: ignore[return-value]

    spec = WorkloadSpec(
        num_sites=profile.fig4_num_sites,
        num_objects=profile.fig4_num_objects,
        update_ratio=profile.fig4_update_ratio,
        capacity_ratio=profile.fig4_capacity_ratio,
    )
    specs = _policy_specs(profile)
    accum: Dict[float, Dict[str, List[Tuple[float, float]]]] = {
        x: {label: [] for label, _, _ in specs} for x in x_values
    }
    instance_seeds = spawn_seeds(seed + 4, profile.instances)
    for inst_seed in instance_seeds:
        children = inst_seed.spawn(3 + len(x_values))
        instance = generate_instance(spec, rng=children[0])
        gra = GRA(params=profile.gra, rng=children[1])
        static_result, population = gra.run_with_population(instance)
        seed_matrices = [member.matrix for member in population.members]
        for x, drift_child in zip(x_values, children[3:]):
            object_share, read_share = drift_of_x(x)
            drifted, _change = apply_pattern_change(
                instance,
                profile.fig4_change_percent,
                object_share,
                read_share,
                rng=drift_child,
            )
            changed = detect_changed_objects(instance, drifted)
            policy_children = drift_child.spawn(len(specs))
            for (label, kind, generations), pol_seed in zip(
                specs, policy_children
            ):
                outcome = run_adaptation(
                    kind,
                    drifted,
                    static_result.scheme,
                    generations=generations,
                    changed_objects=changed,
                    seed_matrices=seed_matrices,
                    gra_params=profile.gra,
                    agra_params=profile.agra,
                    rng=pol_seed,
                    label=label,
                )
                accum[x][label].append(
                    (outcome.savings_percent, outcome.runtime_seconds)
                )

    sweep: AdaptiveSweep = {
        x: {
            label: (
                float(np.mean([s for s, _ in outcomes])),
                float(np.mean([t for _, t in outcomes])),
            )
            for label, outcomes in by_policy.items()
        }
        for x, by_policy in accum.items()
    }
    _CACHE[key] = sweep
    return sweep


def fig4a(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 4(a): savings versus the share of objects with reads increased."""
    profile = profile or get_profile()
    x_values = [share * 100.0 for share in profile.fig4_object_shares]
    sweep = _adaptive_sweep(
        profile,
        seed,
        list(profile.fig4_object_shares),
        "reads-up",
        lambda share: (share, 1.0),
    )
    series = {
        label: [sweep[share][label][0] for share in profile.fig4_object_shares]
        for label, _, _ in _policy_specs(profile)
    }
    return FigureResult(
        figure_id="fig4a",
        title=(
            "Savings versus the number of objects having their reads "
            "increased"
        ),
        x_label="OCh (%)",
        y_label="% NTC saved",
        x_values=x_values,
        series=series,
        meta={"profile": profile.name, "Ch%": profile.fig4_change_percent * 100},
    )


def fig4b(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 4(b): savings versus the share of objects with updates increased."""
    profile = profile or get_profile()
    x_values = [share * 100.0 for share in profile.fig4_object_shares]
    sweep = _adaptive_sweep(
        profile,
        seed,
        list(profile.fig4_object_shares),
        "updates-up",
        lambda share: (share, 0.0),
    )
    series = {
        label: [sweep[share][label][0] for share in profile.fig4_object_shares]
        for label, _, _ in _policy_specs(profile)
    }
    return FigureResult(
        figure_id="fig4b",
        title=(
            "Savings versus the number of objects having their updates "
            "increased"
        ),
        x_label="OCh (%)",
        y_label="% NTC saved",
        x_values=x_values,
        series=series,
        meta={"profile": profile.name, "Ch%": profile.fig4_change_percent * 100},
    )


def fig4c(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 4(c): savings versus the read/update mix of the pattern change."""
    profile = profile or get_profile()
    x_values = [share * 100.0 for share in profile.fig4c_read_shares]
    sweep = _adaptive_sweep(
        profile,
        seed,
        list(profile.fig4c_read_shares),
        "mix",
        lambda read_share: (profile.fig4c_object_share, read_share),
    )
    series = {
        label: [
            sweep[share][label][0] for share in profile.fig4c_read_shares
        ]
        for label, _, _ in _policy_specs(profile)
    }
    return FigureResult(
        figure_id="fig4c",
        title="Savings versus the kind of pattern change (updates -> reads)",
        x_label="reads share of changes (%)",
        y_label="% NTC saved",
        x_values=x_values,
        series=series,
        meta={
            "profile": profile.name,
            "OCh%": profile.fig4c_object_share * 100,
        },
    )


def fig4d(
    profile: Optional[ScaleProfile] = None, seed: int = DEFAULT_SEED
) -> FigureResult:
    """Fig. 4(d): execution time of the AGRA/GRA policy variants."""
    profile = profile or get_profile()
    x_values = [share * 100.0 for share in profile.fig4_object_shares]
    sweep = _adaptive_sweep(
        profile,
        seed,
        list(profile.fig4_object_shares),
        "reads-up",
        lambda share: (share, 1.0),
    )
    series = {
        label: [sweep[share][label][1] for share in profile.fig4_object_shares]
        for label, _, _ in _policy_specs(profile)
        if label != "Current"
    }
    return FigureResult(
        figure_id="fig4d",
        title="Execution time of AGRA versions",
        x_label="OCh (%)",
        y_label="seconds",
        x_values=x_values,
        series=series,
        meta={"profile": profile.name},
    )


#: registry used by the CLI runner and the benchmarks
FIGURES: Dict[str, Callable[..., FigureResult]] = {
    "fig1a": fig1a,
    "fig1b": fig1b,
    "fig1c": fig1c,
    "fig1d": fig1d,
    "fig2a": fig2a,
    "fig2b": fig2b,
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig4c": fig4c,
    "fig4d": fig4d,
}


def run_figure(
    figure_id: str,
    profile: Optional[ScaleProfile] = None,
    seed: int = DEFAULT_SEED,
) -> FigureResult:
    """Reproduce one figure by id (``fig1a`` ... ``fig4d``)."""
    try:
        fn = FIGURES[figure_id]
    except KeyError:
        raise ValidationError(
            f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}"
        ) from None
    return fn(profile, seed)


__all__ = [
    "DEFAULT_SEED",
    "FigureResult",
    "FIGURES",
    "run_figure",
    "clear_cache",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig1d",
    "fig2a",
    "fig2b",
    "fig3a",
    "fig3b",
    "fig4a",
    "fig4b",
    "fig4c",
    "fig4d",
]
