"""Experiment harness reproducing every figure of Section 6.

Figures are defined in :mod:`repro.experiments.figures`; each returns a
:class:`~repro.experiments.figures.FigureResult` whose series mirror the
paper's legends.  Scale profiles (:mod:`repro.experiments.config`) let the
same definitions run at CI scale (``quick``, the default) or at the
paper's full scale (``paper``), selected with the ``REPRO_PROFILE``
environment variable or explicitly.
"""

from repro.experiments.config import (
    MID_PROFILE,
    PAPER_PROFILE,
    QUICK_PROFILE,
    ScaleProfile,
    get_profile,
)
from repro.experiments.figures import (
    FigureResult,
    FIGURES,
    run_figure,
)
from repro.experiments.scale import (
    SCALE_TIERS,
    ScaleSpec,
    generate_scale_problem,
    run_scale,
)
from repro.experiments.harness import (
    InstanceAverages,
    average_static_runs,
    chaos_replay_runs,
)
from repro.experiments.parallel import (
    GRAFactory,
    ParallelRunner,
    SRAFactory,
    parallel_average_static_runs,
)

__all__ = [
    "ParallelRunner",
    "SRAFactory",
    "GRAFactory",
    "parallel_average_static_runs",
    "ScaleProfile",
    "QUICK_PROFILE",
    "MID_PROFILE",
    "PAPER_PROFILE",
    "get_profile",
    "ScaleSpec",
    "SCALE_TIERS",
    "generate_scale_problem",
    "run_scale",
    "FigureResult",
    "FIGURES",
    "run_figure",
    "InstanceAverages",
    "average_static_runs",
    "chaos_replay_runs",
]
