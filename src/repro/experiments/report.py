"""Rendering of reproduced figures (and run metrics) as terminal tables."""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.experiments.config import ScaleProfile, get_profile
from repro.experiments.figures import FIGURES, FigureResult, run_figure
from repro.utils.metrics import MetricsRegistry


def render_figure(result: FigureResult, precision: int = 2) -> str:
    """One figure as an aligned table (x column + one column per legend)."""
    return result.render(precision=precision)


def render_figures(
    figure_ids: Iterable[str],
    profile: Optional[ScaleProfile] = None,
    seed: Optional[int] = None,
) -> str:
    """Run and render several figures, separated by blank lines."""
    profile = profile or get_profile()
    blocks: List[str] = []
    for figure_id in figure_ids:
        kwargs = {} if seed is None else {"seed": seed}
        result = run_figure(figure_id, profile, **kwargs)
        blocks.append(render_figure(result))
    return "\n\n".join(blocks)


def render_all(
    profile: Optional[ScaleProfile] = None, seed: Optional[int] = None
) -> str:
    """Every figure of the paper, in order."""
    return render_figures(sorted(FIGURES), profile, seed)


def render_metrics(registry: MetricsRegistry, precision: int = 4) -> str:
    """Cache counters and per-phase timers as a terminal block."""
    return registry.render(precision=precision)


__all__ = ["render_figure", "render_figures", "render_all", "render_metrics"]
