"""Instance-averaged algorithm runs (the paper averages over 15 networks).

For each data point the paper generates 15 networks and records the
average NTC savings, execution time and replica count.  The helpers here
do the same over any number of instances, with seeds derived
deterministically from one master seed so every figure is reproducible.

Runs fan out over worker processes when ``max_workers > 1`` (or when a
process-wide default is installed via
:func:`repro.experiments.parallel.configure` / ``$REPRO_PARALLEL``);
results are bit-identical to the serial loop because every task derives
the same :class:`numpy.random.SeedSequence` children — see
:mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.base import AlgorithmResult, ReplicationAlgorithm
from repro.core.cost import CostModel
from repro.core.problem import DRPInstance
from repro.errors import ValidationError
from repro.utils.metrics import MetricsRegistry, global_metrics
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.tracing import current_tracer
from repro.workload.generator import generate_instance
from repro.workload.spec import WorkloadSpec

#: factory signature: given a per-run seed, build a fresh algorithm
AlgorithmFactory = Callable[[np.random.SeedSequence], ReplicationAlgorithm]


@dataclass
class InstanceAverages:
    """Means over instances for one algorithm at one data point."""

    algorithm: str
    savings_percent: float
    extra_replicas: float
    runtime_seconds: float
    total_cost: float
    runs: int

    @classmethod
    def from_results(cls, results: Sequence[AlgorithmResult]) -> "InstanceAverages":
        if not results:
            raise ValidationError("cannot average zero results")
        return cls(
            algorithm=results[0].algorithm,
            savings_percent=float(
                np.mean([r.savings_percent for r in results])
            ),
            extra_replicas=float(np.mean([r.extra_replicas for r in results])),
            runtime_seconds=float(
                np.mean([r.runtime_seconds for r in results])
            ),
            total_cost=float(np.mean([r.total_cost for r in results])),
            runs=len(results),
        )


def average_static_runs(
    spec: WorkloadSpec,
    factories: Dict[str, AlgorithmFactory],
    instances: int,
    seed: SeedLike = None,
    max_workers: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, InstanceAverages]:
    """Run each algorithm on ``instances`` fresh networks; average metrics.

    Every algorithm sees the *same* sequence of instances (generated from
    per-instance child seeds), and gets its own independent RNG child per
    run, so comparisons are paired and reproducible.

    ``max_workers`` > 1 fans the (instance x algorithm) grid over worker
    processes via :class:`~repro.experiments.parallel.ParallelRunner`;
    ``None`` consults the process-wide default (serial unless configured).
    Results are bit-identical either way.  ``metrics``, when given (or
    when a global registry is enabled), receives cache counters and
    timers from every run, merged across workers.
    """
    from repro.experiments.parallel import ParallelRunner, resolve_max_workers

    if instances < 1:
        raise ValidationError(f"instances must be >= 1, got {instances}")
    workers = resolve_max_workers(max_workers)
    if workers > 1:
        return ParallelRunner(max_workers=workers).average_static_runs(
            spec, factories, instances, seed=seed, metrics=metrics
        )
    metrics = metrics if metrics is not None else global_metrics()
    tracer = current_tracer()
    results: Dict[str, List[AlgorithmResult]] = {
        label: [] for label in factories
    }
    instance_seeds = spawn_seeds(seed, instances)
    # Same span names as the parallel runner, so `repro trace` output
    # reads identically whether a sweep ran serially or fanned out.
    with tracer.span(
        "harness.average_static_runs",
        instances=instances,
        algorithms=len(factories),
        workers=1,
    ):
        for index, inst_seed in enumerate(instance_seeds):
            children = inst_seed.spawn(len(factories) + 1)
            instance = generate_instance(spec, rng=children[0])
            model = CostModel(instance, metrics=metrics)
            for (label, factory), algo_seed in zip(
                factories.items(), children[1:]
            ):
                algorithm = factory(algo_seed)
                with tracer.span(
                    "harness.task", label=label, instance=index
                ):
                    results[label].append(algorithm.run(instance, model))
    if metrics is not None:
        metrics.increment("harness.instances", instances)
        metrics.increment("harness.tasks", instances * len(factories))
    return {
        label: InstanceAverages.from_results(runs)
        for label, runs in results.items()
    }


def chaos_replay_runs(
    spec: WorkloadSpec,
    plan,
    instances: int,
    seed: SeedLike = None,
    max_workers: Optional[int] = None,
) -> List[Dict[str, float]]:
    """SRA schemes replayed under a fault plan on fresh networks.

    Thin dispatcher over
    :meth:`~repro.experiments.parallel.ParallelRunner.chaos_replay_runs`;
    worker-count resolution follows the same explicit > configured >
    ``$REPRO_PARALLEL`` > serial chain as :func:`average_static_runs`,
    and results are bit-identical for any worker count.
    """
    from repro.experiments.parallel import ParallelRunner

    return ParallelRunner(max_workers=max_workers).chaos_replay_runs(
        spec, plan, instances, seed=seed
    )


__all__ = [
    "AlgorithmFactory",
    "InstanceAverages",
    "average_static_runs",
    "chaos_replay_runs",
]
