"""Bulk export of reproduced results to a directory.

Writes, for each requested figure, both the machine-readable JSON
(loadable via :mod:`repro.io`) and the rendered ASCII table; ablations
and the claims-verification verdicts likewise; plus a ``manifest.json``
tying the run together (profile, seed, file list).  This is the artifact
a paper-reproduction report links to.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.errors import ValidationError
from repro.experiments.ablations import ABLATIONS, run_ablation
from repro.experiments.claims import render_verdicts, verify_claims
from repro.experiments.config import ScaleProfile, get_profile
from repro.experiments.figures import DEFAULT_SEED, FIGURES, run_figure
from repro.io import save_figure_result

PathLike = Union[str, Path]


def export_results(
    output_dir: PathLike,
    profile: Optional[ScaleProfile] = None,
    seed: int = DEFAULT_SEED,
    figures: Optional[Sequence[str]] = None,
    ablations: Optional[Sequence[str]] = None,
    include_claims: bool = True,
) -> Dict[str, object]:
    """Reproduce and write results under ``output_dir``.

    ``figures``/``ablations`` default to *all* of them; pass empty lists
    to skip a category.  Returns the manifest (also written to
    ``manifest.json``).
    """
    profile = profile or get_profile()
    figure_ids = sorted(FIGURES) if figures is None else list(figures)
    ablation_ids = sorted(ABLATIONS) if ablations is None else list(ablations)
    for fig_id in figure_ids:
        if fig_id not in FIGURES:
            raise ValidationError(f"unknown figure {fig_id!r}")
    for ablation_id in ablation_ids:
        if ablation_id not in ABLATIONS:
            raise ValidationError(f"unknown ablation {ablation_id!r}")

    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[str] = []

    for fig_id in figure_ids:
        result = run_figure(fig_id, profile, seed=seed)
        json_path = out / f"{fig_id}.json"
        save_figure_result(result, json_path)
        txt_path = out / f"{fig_id}.txt"
        txt_path.write_text(result.render() + "\n", encoding="utf-8")
        written.extend([json_path.name, txt_path.name])

    for ablation_id in ablation_ids:
        result = run_ablation(ablation_id, profile)
        txt_path = out / f"ablation-{ablation_id}.txt"
        txt_path.write_text(result.render() + "\n", encoding="utf-8")
        json_path = out / f"ablation-{ablation_id}.json"
        with json_path.open("w", encoding="utf-8") as handle:
            json.dump(
                {
                    "ablation_id": result.ablation_id,
                    "title": result.title,
                    "headers": result.headers,
                    "rows": result.rows,
                    "meta": result.meta,
                },
                handle,
                indent=2,
            )
            handle.write("\n")
        written.extend([txt_path.name, json_path.name])

    claims_summary: Optional[List[Dict[str, str]]] = None
    if include_claims:
        results = verify_claims(profile, seed=seed)
        claims_path = out / "claims.txt"
        claims_path.write_text(
            render_verdicts(results) + "\n", encoding="utf-8"
        )
        claims_summary = [
            {
                "claim": r.claim_id,
                "verdict": r.verdict,
                "detail": r.detail,
            }
            for r in results
        ]
        with (out / "claims.json").open("w", encoding="utf-8") as handle:
            json.dump(claims_summary, handle, indent=2)
            handle.write("\n")
        written.extend(["claims.txt", "claims.json"])

    manifest = {
        "profile": profile.name,
        "seed": seed,
        "figures": figure_ids,
        "ablations": ablation_ids,
        "claims_included": include_claims,
        "files": written,
    }
    with (out / "manifest.json").open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
        handle.write("\n")
    return manifest


__all__ = ["export_results"]
