"""Scale profiles for the experiment harness.

The paper's evaluation runs up to 100 sites x 1,000 objects with 15
network instances per data point and a 50x80 GA — hours of compute on a
modern laptop in pure Python.  Every figure definition therefore takes a
:class:`ScaleProfile`:

* ``quick`` (default) — CI-sized grids with a reduced GA; preserves every
  *trend* in the paper because all effects are ratio-driven (update
  ratio, capacity ratio), not absolute-size-driven.
* ``mid`` — intermediate grids (minutes, not seconds or hours), useful for
  checking scale-dependent effects like the Fig. 4(d) runtime ordering.
* ``paper`` — the full Section 6 grids and the paper's GA parameters.

Select with ``REPRO_PROFILE=paper`` or pass a profile explicitly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.algorithms.agra.params import AGRAParams
from repro.algorithms.gra.params import GAParams
from repro.errors import ValidationError

#: environment variable consulted by :func:`get_profile`
PROFILE_ENV_VAR = "REPRO_PROFILE"


@dataclass(frozen=True)
class ScaleProfile:
    """Every figure's grid sizes and GA budgets in one place."""

    name: str
    instances: int  # networks averaged per data point (paper: 15)
    gra: GAParams
    agra: AGRAParams

    # --- Figures 1(a)/1(b)/2(a)/2(b): sweep over number of sites ------ #
    fig1_sites: Tuple[int, ...]
    fig1_num_objects: int
    fig1_update_ratios: Tuple[float, ...]  # paper: 2%, 5%, 10%
    fig1_capacity_ratio: float  # paper: 15%

    # --- Figures 1(c)/1(d): sweep over number of objects -------------- #
    fig1c_num_sites: int
    fig1c_objects: Tuple[int, ...]

    # --- Figure 3(a): sweep over update ratio ------------------------- #
    fig3a_update_ratios: Tuple[float, ...]
    fig3a_num_sites: int
    fig3a_num_objects: int

    # --- Figure 3(b): sweep over capacity ratio ----------------------- #
    fig3b_capacity_ratios: Tuple[float, ...]
    fig3b_update_ratio: float

    # --- Figures 4(a)-(d): AGRA under pattern change ------------------ #
    fig4_num_sites: int
    fig4_num_objects: int
    fig4_update_ratio: float
    fig4_capacity_ratio: float
    fig4_change_percent: float  # paper: Ch = 600%
    fig4_object_shares: Tuple[float, ...]  # OCh sweep for 4(a)/4(b)
    fig4c_read_shares: Tuple[float, ...]  # R sweep for 4(c)
    fig4c_object_share: float  # fixed OCh for 4(c)
    fig4_static_generations: Tuple[int, int]  # paper: (80, 150)
    fig4_mini_generations: Tuple[int, int]  # paper: (5, 10)

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValidationError(
                f"instances must be >= 1, got {self.instances}"
            )

    def with_overrides(self, **kwargs: object) -> "ScaleProfile":
        return replace(self, **kwargs)  # type: ignore[arg-type]


QUICK_PROFILE = ScaleProfile(
    name="quick",
    instances=3,
    gra=GAParams(population_size=16, generations=20),
    agra=AGRAParams(population_size=8, generations=20),
    fig1_sites=(10, 20, 30, 40),
    fig1_num_objects=40,
    fig1_update_ratios=(0.02, 0.05, 0.10),
    fig1_capacity_ratio=0.15,
    fig1c_num_sites=20,
    fig1c_objects=(20, 40, 60, 80),
    fig3a_update_ratios=(0.01, 0.02, 0.05, 0.10, 0.20),
    fig3a_num_sites=20,
    fig3a_num_objects=40,
    fig3b_capacity_ratios=(0.05, 0.10, 0.15, 0.20, 0.30),
    fig3b_update_ratio=0.05,
    fig4_num_sites=16,
    fig4_num_objects=40,
    fig4_update_ratio=0.05,
    fig4_capacity_ratio=0.15,
    fig4_change_percent=6.0,
    fig4_object_shares=(0.10, 0.30, 0.50),
    fig4c_read_shares=(0.0, 0.25, 0.50, 0.75, 1.0),
    fig4c_object_share=0.30,
    fig4_static_generations=(20, 40),
    fig4_mini_generations=(5, 10),
)

#: intermediate scale: minutes instead of seconds (quick) or hours (paper)
MID_PROFILE = ScaleProfile(
    name="mid",
    instances=5,
    gra=GAParams(population_size=30, generations=40),
    agra=AGRAParams(population_size=10, generations=35),
    fig1_sites=(20, 40, 60, 80),
    fig1_num_objects=80,
    fig1_update_ratios=(0.02, 0.05, 0.10),
    fig1_capacity_ratio=0.15,
    fig1c_num_sites=40,
    fig1c_objects=(50, 100, 150, 200),
    fig3a_update_ratios=(0.01, 0.02, 0.05, 0.10, 0.20),
    fig3a_num_sites=30,
    fig3a_num_objects=60,
    fig3b_capacity_ratios=(0.05, 0.10, 0.15, 0.20, 0.30),
    fig3b_update_ratio=0.05,
    fig4_num_sites=30,
    fig4_num_objects=100,
    fig4_update_ratio=0.05,
    fig4_capacity_ratio=0.15,
    fig4_change_percent=6.0,
    fig4_object_shares=(0.10, 0.30, 0.50),
    fig4c_read_shares=(0.0, 0.25, 0.50, 0.75, 1.0),
    fig4c_object_share=0.30,
    fig4_static_generations=(40, 80),
    fig4_mini_generations=(5, 10),
)

PAPER_PROFILE = ScaleProfile(
    name="paper",
    instances=15,
    gra=GAParams(population_size=50, generations=80),
    agra=AGRAParams(population_size=10, generations=50),
    fig1_sites=(20, 40, 60, 80, 100),
    fig1_num_objects=150,
    fig1_update_ratios=(0.02, 0.05, 0.10),
    fig1_capacity_ratio=0.15,
    fig1c_num_sites=100,
    fig1c_objects=(100, 200, 400, 600, 800, 1000),
    fig3a_update_ratios=(0.005, 0.01, 0.02, 0.05, 0.10, 0.20),
    fig3a_num_sites=50,
    fig3a_num_objects=150,
    fig3b_capacity_ratios=(0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
    fig3b_update_ratio=0.05,
    fig4_num_sites=50,
    fig4_num_objects=200,
    fig4_update_ratio=0.05,
    fig4_capacity_ratio=0.15,
    fig4_change_percent=6.0,
    fig4_object_shares=(0.10, 0.20, 0.30, 0.40, 0.50),
    fig4c_read_shares=(0.0, 0.20, 0.40, 0.60, 0.80, 1.0),
    fig4c_object_share=0.30,
    fig4_static_generations=(80, 150),
    fig4_mini_generations=(5, 10),
)

_PROFILES: Dict[str, ScaleProfile] = {
    QUICK_PROFILE.name: QUICK_PROFILE,
    MID_PROFILE.name: MID_PROFILE,
    PAPER_PROFILE.name: PAPER_PROFILE,
}


def get_profile(name: str = "") -> ScaleProfile:
    """Resolve a profile by name, falling back to ``$REPRO_PROFILE``/quick."""
    name = name or os.environ.get(PROFILE_ENV_VAR, "") or "quick"
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValidationError(
            f"unknown profile {name!r}; choose from {sorted(_PROFILES)}"
        ) from None


__all__ = [
    "PROFILE_ENV_VAR",
    "ScaleProfile",
    "QUICK_PROFILE",
    "MID_PROFILE",
    "PAPER_PROFILE",
    "get_profile",
]
