"""Process-pool fan-out of the experiment harness.

The paper averages every data point over 15 independently generated
networks; serially that makes Figures 1-4 wall-clock bound by a single
core.  :class:`ParallelRunner` fans the ``(instance_seed x
algorithm_factory)`` grid of :func:`~repro.experiments.harness.
average_static_runs` out over a :class:`concurrent.futures.
ProcessPoolExecutor` while keeping the results **bit-identical** to the
serial harness:

* the per-instance :class:`numpy.random.SeedSequence` children are
  derived exactly as the serial loop derives them (each task re-spawns
  ``instances + algorithms`` children from its own pickled copy of the
  instance seed, whose spawn counter is still zero), so instance
  generation and every stochastic algorithm see the same streams
  regardless of worker count or scheduling order;
* cost evaluation is an exact deterministic function of the instance, so
  sharing (serial) versus not sharing (parallel) a
  :class:`~repro.core.cost.CostModel` cache cannot change any number.

Cross-cutting state rides on the runtime layer: every task carries an
uninstalled :meth:`~repro.runtime.context.RunContext.fork` child of the
ambient context, and the fork's ``install()`` performs the per-worker
tracer setup (fresh per-task tracer in a pool worker, straight into the
live tracer in-process) that this module used to hand-roll with pid
checks.

Robustness: each task gets a soft per-task timeout, and any task whose
worker crashes (``BrokenProcessPool``), times out, or cannot be shipped
to a worker in the first place (unpicklable factory, e.g. a lambda) is
retried **once, in-process** — the retry computes the same seeds, so the
fall-back changes wall-clock only, never results.

A process-wide default worker count can be installed with
:func:`repro.runtime.context.configure_parallelism` (re-exported here as
:func:`configure`; the CLI ``--parallel N`` flag routes through the run
context) or the ``REPRO_PARALLEL`` environment variable;
``average_static_runs`` picks it up when no explicit ``max_workers`` is
passed, so every figure sweep inherits the fan-out without touching
figure code.
"""

from __future__ import annotations

import pickle
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import AlgorithmResult
from repro.algorithms.gra.engine import GRA
from repro.algorithms.gra.params import GAParams
from repro.algorithms.sra import SRA
from repro.core.cost import CostModel
from repro.errors import ValidationError
from repro.runtime.context import (
    PARALLEL_ENV_VAR,
    RunContext,
    ambient_context,
    configure_parallelism as configure,
    resolve_max_workers,
)
from repro.runtime.registry import default_registry
from repro.utils.metrics import MetricsRegistry, Snapshot, global_metrics
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.tracing import Record, current_tracer
from repro.workload.generator import generate_instance
from repro.workload.spec import WorkloadSpec


# --------------------------------------------------------------------- #
# picklable algorithm factories (lambdas cannot cross process borders)
# --------------------------------------------------------------------- #
class SRAFactory:
    """Picklable ``AlgorithmFactory`` building a fresh :class:`SRA`."""

    def __call__(self, seed: np.random.SeedSequence) -> SRA:
        return default_registry().create("sra")


class GRAFactory:
    """Picklable ``AlgorithmFactory`` building a fresh :class:`GRA`."""

    def __init__(self, params: Optional[GAParams] = None) -> None:
        self.params = params or GAParams()

    def __call__(self, seed: np.random.SeedSequence) -> GRA:
        return default_registry().create("gra", seed=seed, params=self.params)


# --------------------------------------------------------------------- #
# the unit of fan-out
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Task:
    """One (instance seed x algorithm) cell of the harness grid."""

    spec: WorkloadSpec
    label: str
    factory: object
    factory_index: int
    num_factories: int
    instance_index: int
    instance_seed: np.random.SeedSequence
    collect_metrics: bool
    fork: RunContext


def _run_task(
    task: _Task,
) -> Tuple[int, str, AlgorithmResult, Optional[Snapshot], Optional[Record]]:
    """Execute one grid cell; top-level so worker processes can import it.

    Spawns the same ``num_factories + 1`` children the serial harness
    spawns from this instance seed: child 0 generates the network, child
    ``1 + factory_index`` drives the algorithm.  Identical seeds in every
    execution mode is what makes serial and parallel runs bit-identical.

    The seed is re-derived from its entropy/spawn-key state rather than
    spawned directly: several tasks share one instance seed, and
    ``SeedSequence.spawn`` mutates its spawn counter — re-deriving resets
    the counter to zero so every task sees the same children whether it
    runs in a worker (fresh pickled copy) or in-process (shared object).

    The task's :class:`RunContext` fork decides — by pid, inside its
    ``install()`` — whether this call runs in a pool worker (fresh
    per-task tracer whose snapshot ships back for re-parenting) or
    in-process (records straight into the live tracer, ships ``None``).
    """
    seq = task.instance_seed
    seq = np.random.SeedSequence(
        entropy=seq.entropy,
        spawn_key=seq.spawn_key,
        pool_size=seq.pool_size,
    )
    children = seq.spawn(task.num_factories + 1)
    fork = task.fork
    with fork.activate():
        with fork.tracer.span(
            "harness.task",
            label=task.label,
            instance=task.instance_index,
        ):
            instance = generate_instance(task.spec, rng=children[0])
            registry = MetricsRegistry() if task.collect_metrics else None
            model = CostModel(instance, metrics=registry)
            algorithm = task.factory(children[1 + task.factory_index])
            result = algorithm.run(instance, model)
        snapshot = registry.snapshot() if registry is not None else None
        trace = fork.trace_snapshot()
    return task.instance_index, task.label, result, snapshot, trace


@dataclass(frozen=True)
class _ReplayTask:
    """One chaos-replay cell: SRA scheme + faulty trace replay."""

    spec: WorkloadSpec
    plan: object  # repro.sim.faults.FaultPlan (picklable frozen dataclass)
    instance_index: int
    instance_seed: np.random.SeedSequence
    fork: RunContext


def _run_replay_task(
    task: _ReplayTask,
) -> Tuple[int, Dict[str, float], Optional[Snapshot], Optional[Record]]:
    """Execute one chaos-replay cell; top-level for worker import.

    Spawns exactly two children from the (re-derived) instance seed:
    child 0 generates the network, child 1 shuffles the request trace —
    the same derivation in every execution mode, so serial and parallel
    chaos runs produce identical metrics.  Tracer handling rides on the
    fork exactly as in :func:`_run_task`.
    """
    from repro.sim.faults import FaultInjector
    from repro.sim.protocol import ReplicaSystem
    from repro.workload.trace import generate_trace

    seq = task.instance_seed
    seq = np.random.SeedSequence(
        entropy=seq.entropy,
        spawn_key=seq.spawn_key,
        pool_size=seq.pool_size,
    )
    children = seq.spawn(2)
    fork = task.fork
    with fork.activate():
        with fork.tracer.span(
            "harness.chaos_task", instance=task.instance_index
        ):
            instance = generate_instance(task.spec, rng=children[0])
            result = default_registry().create("sra").run(instance)
            trace = generate_trace(instance, rng=children[1])
            system = ReplicaSystem(instance, result.scheme)
            injector = FaultInjector(task.plan)
            system.replay(trace, injector=injector)
            summary = system.metrics.summary()
        trace_snapshot = fork.trace_snapshot()
    return task.instance_index, summary, None, trace_snapshot


class ParallelRunner:
    """Fans harness grids over worker processes; falls back to serial.

    Parameters
    ----------
    max_workers:
        Worker processes; ``None`` resolves via :func:`resolve_max_workers`
        (explicit > :func:`configure` > ``$REPRO_PARALLEL`` > serial).
        ``1`` runs everything in-process with no executor at all, so CI
        and small runs behave exactly as before.
    task_timeout:
        Soft per-task seconds to wait for a worker's result before the
        task is re-run in-process (``None`` waits forever).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        self.max_workers = resolve_max_workers(max_workers)
        if task_timeout is not None and task_timeout <= 0:
            raise ValidationError(
                f"task_timeout must be > 0, got {task_timeout}"
            )
        self.task_timeout = task_timeout

    @property
    def serial(self) -> bool:
        return self.max_workers <= 1

    # ------------------------------------------------------------------ #
    def average_static_runs(
        self,
        spec: WorkloadSpec,
        factories: Dict[str, object],
        instances: int,
        seed: SeedLike = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        """Parallel drop-in for :func:`~repro.experiments.harness.average_static_runs`.

        Same paired-instance design and the same seed derivation; returns
        the same ``{label: InstanceAverages}`` mapping, bit-identical to
        the serial harness for any worker count (runtimes excepted — they
        are wall-clock measurements, not derived quantities).
        """
        from repro.experiments.harness import InstanceAverages

        if instances < 1:
            raise ValidationError(
                f"instances must be >= 1, got {instances}"
            )
        if not factories:
            raise ValidationError("need at least one algorithm factory")
        metrics = metrics if metrics is not None else global_metrics()
        ctx = ambient_context()
        tracer = current_tracer()
        labels = list(factories)
        instance_seeds = spawn_seeds(seed, instances)
        tasks = [
            _Task(
                spec=spec,
                label=label,
                factory=factories[label],
                factory_index=j,
                num_factories=len(labels),
                instance_index=i,
                instance_seed=inst_seed,
                collect_metrics=metrics is not None,
                fork=ctx.fork(i * len(labels) + j),
            )
            for i, inst_seed in enumerate(instance_seeds)
            for j, label in enumerate(labels)
        ]
        with tracer.span(
            "harness.average_static_runs",
            instances=instances,
            algorithms=len(labels),
            workers=self.max_workers,
        ) as root:
            outcomes = self._run_tasks(tasks)
            results: Dict[str, List[AlgorithmResult]] = {
                label: [] for label in labels
            }
            # Merging in task order keeps the re-assigned span ids (and
            # therefore the exported trace) deterministic for any worker
            # count or completion order.
            for _index, label, result, snapshot, trace in outcomes:
                results[label].append(result)
                if metrics is not None and snapshot is not None:
                    metrics.merge_snapshot(snapshot)
                if trace is not None:
                    tracer.merge_snapshot(trace, parent_id=root.id)
        if metrics is not None:
            metrics.increment("harness.instances", instances)
            metrics.increment("harness.tasks", len(tasks))
        return {
            label: InstanceAverages.from_results(runs)
            for label, runs in results.items()
        }

    # ------------------------------------------------------------------ #
    def chaos_replay_runs(
        self,
        spec: WorkloadSpec,
        plan,
        instances: int,
        seed: SeedLike = None,
    ) -> List[Dict[str, float]]:
        """Replay SRA schemes under a fault plan on fresh networks.

        For each of ``instances`` generated networks: solve with SRA,
        generate the matching request trace, and replay it through a
        :class:`~repro.sim.faults.FaultInjector` driven by ``plan``.
        Returns the per-instance ``SimulationMetrics.summary()`` dicts in
        instance order — bit-identical for any worker count (the chaos
        determinism guarantee the fault test-suite asserts).
        """
        if instances < 1:
            raise ValidationError(
                f"instances must be >= 1, got {instances}"
            )
        ctx = ambient_context()
        tracer = current_tracer()
        tasks = [
            _ReplayTask(
                spec=spec,
                plan=plan,
                instance_index=i,
                instance_seed=inst_seed,
                fork=ctx.fork(i),
            )
            for i, inst_seed in enumerate(spawn_seeds(seed, instances))
        ]
        with tracer.span(
            "harness.chaos_replay_runs",
            instances=instances,
            workers=self.max_workers,
        ) as root:
            outcomes = self._run_tasks(tasks, fn=_run_replay_task)
            summaries: List[Dict[str, float]] = [None] * len(tasks)
            for index, summary, _snapshot, trace in outcomes:
                summaries[index] = summary
                if trace is not None:
                    tracer.merge_snapshot(trace, parent_id=root.id)
        return summaries

    # ------------------------------------------------------------------ #
    def _run_tasks(self, tasks: List, fn=_run_task) -> List[Tuple]:
        """Run every task, preserving order; retry failures in-process."""
        if self.serial or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        if not self._picklable(tasks):
            warnings.warn(
                "algorithm factories are not picklable (lambdas?); "
                "running serially — use module-level factories such as "
                "repro.experiments.parallel.SRAFactory/GRAFactory to "
                "enable process fan-out",
                RuntimeWarning,
                stacklevel=3,
            )
            return [fn(task) for task in tasks]
        outcomes: List[Optional[Tuple]] = [None] * len(tasks)
        workers = min(self.max_workers, len(tasks))
        executor = ProcessPoolExecutor(max_workers=workers)
        try:
            futures = {
                i: executor.submit(fn, task)
                for i, task in enumerate(tasks)
            }
            for i, future in futures.items():
                try:
                    outcomes[i] = future.result(timeout=self.task_timeout)
                except (BrokenExecutor, FutureTimeoutError, OSError):
                    outcomes[i] = None  # retried below, in-process
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        for i, outcome in enumerate(outcomes):
            if outcome is None:
                # retry-once: same seeds, same numbers, just local CPU
                outcomes[i] = fn(tasks[i])
        return outcomes  # type: ignore[return-value]

    @staticmethod
    def _picklable(tasks: List) -> bool:
        seen = set()
        for task in tasks:
            # replay tasks carry no factory; their payload (a frozen
            # FaultPlan) is always picklable
            factory = getattr(task, "factory", None)
            if factory is None:
                continue
            marker = id(factory)
            if marker in seen:
                continue
            seen.add(marker)
            try:
                pickle.dumps(factory)
            except Exception:
                return False
        return True


def parallel_average_static_runs(
    spec: WorkloadSpec,
    factories: Dict[str, object],
    instances: int,
    seed: SeedLike = None,
    max_workers: Optional[int] = None,
    task_timeout: Optional[float] = None,
    metrics: Optional[MetricsRegistry] = None,
):
    """One-shot convenience wrapper around :class:`ParallelRunner`."""
    runner = ParallelRunner(max_workers=max_workers, task_timeout=task_timeout)
    return runner.average_static_runs(
        spec, factories, instances, seed=seed, metrics=metrics
    )


__all__ = [
    "PARALLEL_ENV_VAR",
    "ParallelRunner",
    "SRAFactory",
    "GRAFactory",
    "configure",
    "resolve_max_workers",
    "parallel_average_static_runs",
]
