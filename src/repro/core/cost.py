"""The object-transfer cost model of Section 2.2 (Eq. 1-4).

Accounting convention (Eq. 4 of the paper):

* a **non-replicator** site ``i`` pays ``r_ik * o_k * C(i, SN_ik)`` to read
  object ``k`` from its nearest replicator ``SN_ik`` plus
  ``w_ik * o_k * C(i, SP_k)`` to ship its writes to the primary;
* a **replicator** site ``i`` pays ``(sum_x w_xk) * o_k * C(i, SP_k)`` —
  shipping its own writes to the primary and receiving every broadcast
  update from it (both legs cost ``C(i, SP_k)`` per unit since ``C`` is
  symmetric).  The primary itself contributes zero because
  ``C(SP_k, SP_k) = 0``.

The total ``D(X)`` equals the aggregation of Eq. 1 + Eq. 2 over all sites
and objects; the test-suite cross-checks this closed form against a slow
site-by-site reference implementation and against the discrete-event
simulator.

``update_fraction`` (an extension the paper sketches in Section 2.2 —
"we can move only the updated parts") scales every write transfer: 1.0 is
the paper's ship-the-whole-object policy, 0.1 models delta updates that
ship 10% of the object per write.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import ValidationError
from repro.utils.metrics import MetricsRegistry
from repro.utils.profiler import current_profiler
from repro.utils.tracing import current_tracer
from repro.utils.validation import check_fraction

SchemeLike = Union[ReplicationScheme, np.ndarray]


class CostModel:
    """Vectorised evaluator of the total network transfer cost ``D``.

    The evaluator precomputes the read/write *weights* (access counts times
    object size) and memoises per-object costs keyed by the object's packed
    replica column, which makes GA population evaluation cheap: columns
    shared between parents and offspring (elitism, survivors of crossover)
    are never recomputed.

    Parameters
    ----------
    instance:
        The problem inputs.
    update_fraction:
        Fraction of an object shipped per write transfer (default 1.0, the
        paper's policy).
    cache_size:
        Maximum number of memoised per-object costs.  The cache is a true
        LRU: when full, the single least-recently-used entry is evicted,
        so a working set one entry over capacity degrades gracefully
        instead of thrashing to a 0% hit rate.  0 disables caching.
    metrics:
        Optional :class:`~repro.utils.metrics.MetricsRegistry`; when given,
        per-call timers (``cost.object_cost``, ``cost.batch``) and cache
        hit/miss/eviction counters are recorded into it.  Hit/miss/eviction
        totals are tracked on the model itself either way and reported by
        :meth:`cache_info`.
    """

    def __init__(
        self,
        instance: DRPInstance,
        update_fraction: float = 1.0,
        cache_size: int = 200_000,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if cache_size < 0:
            raise ValidationError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        self._instance = instance
        self._uf = check_fraction(
            "update_fraction", update_fraction, allow_zero=True
        )
        # Read weight r_ik * o_k and write weight w_ik * o_k, shape (M, N).
        self._read_weight = instance.reads * instance.sizes[None, :]
        self._write_weight = (
            instance.writes * instance.sizes[None, :] * self._uf
        )
        # Total write weight per object: o_k * sum_x w_xk (already scaled).
        self._total_write_weight = self._write_weight.sum(axis=0)
        # C(i, SP_k) for every (i, k), shape (M, N).
        self._cost_to_primary = instance.cost[:, instance.primaries]
        self._cache: "OrderedDict[Tuple[int, bytes], float]" = OrderedDict()
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._metrics = metrics
        self._d_prime_per_object: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> DRPInstance:
        return self._instance

    @property
    def update_fraction(self) -> float:
        return self._uf

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The registry this model records into, if any."""
        return self._metrics

    @property
    def read_weight(self) -> np.ndarray:
        """Read weight ``r_ik * o_k``, shape ``(M, N)`` (do not mutate)."""
        return self._read_weight

    @property
    def write_weight(self) -> np.ndarray:
        """Scaled write weight ``w_ik * o_k * uf``, shape ``(M, N)``."""
        return self._write_weight

    @property
    def total_write_weight(self) -> np.ndarray:
        """Per-object total write weight ``o_k * uf * sum_x w_xk``."""
        return self._total_write_weight

    @property
    def cost_to_primary(self) -> np.ndarray:
        """``C(i, SP_k)`` for every ``(i, k)``, shape ``(M, N)``."""
        return self._cost_to_primary

    #: whether the full ``(M, N)`` weight matrices are materialised —
    #: :class:`SparseCostModel` keeps only object-column tiles instead
    has_dense_weights = True

    # ------------------------------------------------------------------ #
    # per-object weight columns (the kernels consume these, never the
    # full matrices, so tile-backed subclasses can swap the storage)
    # ------------------------------------------------------------------ #
    def read_weight_col(self, obj: int) -> np.ndarray:
        """Read weight column ``r_.k * o_k``, shape ``(M,)``."""
        return self._read_weight[:, obj]

    def write_weight_col(self, obj: int) -> np.ndarray:
        """Scaled write weight column ``w_.k * o_k * uf``, shape ``(M,)``."""
        return self._write_weight[:, obj]

    def cost_to_primary_col(self, obj: int) -> np.ndarray:
        """``C(., SP_k)`` column, shape ``(M,)``."""
        return self._cost_to_primary[:, obj]

    def total_write_weight_of(self, obj: int) -> float:
        """Scalar ``o_k * uf * sum_x w_xk`` of one object."""
        return self._total_write_weight[obj]

    # ------------------------------------------------------------------ #
    # per-object costs
    # ------------------------------------------------------------------ #
    def object_cost(self, obj: int, column: np.ndarray) -> float:
        """NTC contributed by object ``obj`` under replica ``column``.

        ``column`` is the boolean length-``M`` replica indicator (the
        paper's ``V_k`` when summed with read and write components).  The
        primary must be a replicator; this is *not* re-checked here for
        speed — schemes enforce it structurally.
        """
        if self._metrics is not None:
            with self._metrics.timer("cost.object_cost"):
                return self._object_cost(obj, column)
        return self._object_cost(obj, column)

    def _object_cost(self, obj: int, column: np.ndarray) -> float:
        mask = np.asarray(column, dtype=bool)
        reps = np.nonzero(mask)[0]
        cost = self._instance.cost
        # Reads: every site reads from its nearest replicator; replicator
        # rows contribute zero because min cost over reps includes self.
        # The weight column is copied contiguous before the dot: BLAS
        # picks its ddot kernel (and with it the accumulation order) by
        # operand stride, and the dense and tile-backed models store the
        # column at different strides — the copy pins every evaluation
        # path to the unit-stride kernel so costs stay bit-identical on
        # non-integer cost matrices.
        nearest_cost = cost[:, reps].min(axis=1)
        read_term = float(
            np.ascontiguousarray(self.read_weight_col(obj)) @ nearest_cost
        )
        # Writes: non-replicators ship their own writes to the primary;
        # replicators are charged for all writes (own + received updates).
        to_primary = self.cost_to_primary_col(obj)
        write_w = self.write_weight_col(obj)
        nonrep_writes = float(write_w[~mask] @ to_primary[~mask])
        rep_writes = float(
            to_primary[mask].sum() * self.total_write_weight_of(obj)
        )
        return read_term + nonrep_writes + rep_writes

    def object_cost_cached(
        self, obj: int, column: np.ndarray, key: Optional[bytes] = None
    ) -> float:
        """Memoised :meth:`object_cost` (keyed by the packed column bits).

        The memo table is LRU: a hit refreshes the entry's recency, and an
        insert into a full cache evicts only the least-recently-used entry.

        ``key`` may pass the column's packed-bit digest when the caller
        already owns one (:meth:`ReplicationScheme.column_digest`), which
        skips the per-lookup ``packbits`` that otherwise dominates the
        cache's hot path.  It must equal
        ``np.packbits(column).tobytes()`` — digests and ad-hoc lookups
        share one key space.
        """
        if self._cache_size == 0:
            return self.object_cost(obj, column)
        if key is None:
            key = np.packbits(np.asarray(column, dtype=bool)).tobytes()
        key = (obj, key)
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            self._record_hit()
            return hit
        self._record_miss()
        value = self.object_cost(obj, column)
        self._cache_insert(key, value)
        return value

    def cache_lookup(self, obj: int, column: np.ndarray) -> Optional[float]:
        """Probe the memo table for a column's cost (hit/miss counted).

        Returns ``None`` on a miss (or when caching is disabled).  The
        incremental chains use this with :meth:`cache_store` so their
        cache traffic — and therefore :meth:`cache_info` — is identical
        to pricing through :meth:`object_cost_cached`.
        """
        if self._cache_size == 0:
            return None
        key = (obj, np.packbits(np.asarray(column, dtype=bool)).tobytes())
        hit = self._cache.get(key)
        if hit is not None:
            self._cache.move_to_end(key)
            self._record_hit()
            return hit
        self._record_miss()
        return None

    def cache_store(self, obj: int, column: np.ndarray, value: float) -> None:
        """Insert an externally priced column cost into the memo table."""
        if self._cache_size == 0:
            return
        key = (obj, np.packbits(np.asarray(column, dtype=bool)).tobytes())
        self._cache_insert(key, float(value))

    def _record_hit(self) -> None:
        self._hits += 1
        if self._metrics is not None:
            self._metrics.increment("cost.cache_hits")

    def _record_miss(self) -> None:
        self._misses += 1
        if self._metrics is not None:
            self._metrics.increment("cost.cache_misses")

    #: evictions between ``cost.cache_pressure`` trace events
    _EVICTION_SAMPLE = 1024

    def _cache_insert(self, key: Tuple[int, bytes], value: float) -> None:
        if len(self._cache) >= self._cache_size:
            self._cache.popitem(last=False)
            self._evictions += 1
            if self._metrics is not None:
                self._metrics.increment("cost.cache_evictions")
            if self._evictions % self._EVICTION_SAMPLE == 1:
                tracer = current_tracer()
                if tracer.enabled:
                    # Sampled: one event per _EVICTION_SAMPLE evictions
                    # marks when (and how hard) the LRU starts thrashing.
                    tracer.event(
                        "cost.cache_pressure",
                        evictions=self._evictions,
                        hits=self._hits,
                        misses=self._misses,
                    )
        self._cache[key] = value

    def object_costs_batch(
        self, obj: int, columns: np.ndarray, chunk: int = 64
    ) -> np.ndarray:
        """Costs of many replica columns of one object at once.

        ``columns`` is a boolean ``(P, M)`` stack.  Duplicate columns are
        collapsed with :func:`numpy.unique`, cached costs are reused, and
        the remaining fresh columns are priced ``chunk`` rows at a time:
        each row's nearest-replicator distances come from a gather over
        its replicator set only, so the peak temporary is the
        ``chunk x M`` nearest table (an earlier revision broadcast a
        ``chunk x M x M`` masked copy of the cost matrix — half a
        gigabyte at M=1024).  Equivalent to calling
        :meth:`object_cost_cached` per row; used by GA population
        evaluation where whole generations share columns.
        """
        columns = np.asarray(columns, dtype=bool)
        if columns.ndim != 2 or columns.shape[1] != self._instance.num_sites:
            raise ValidationError(
                "columns must have shape (P, "
                f"{self._instance.num_sites}), got {columns.shape}"
            )
        tracer = current_tracer()
        if tracer.enabled:
            # One span per batched evaluation: coarse enough to stay
            # cheap, fine enough to localise GA evaluation time.  The
            # profiler ticks inside the span so samples attribute here.
            with tracer.span(
                "cost.batch", obj=obj, rows=int(columns.shape[0])
            ):
                result = self._timed_batch(obj, columns, chunk)
                current_profiler().tick()
                return result
        return self._timed_batch(obj, columns, chunk)

    def _timed_batch(
        self, obj: int, columns: np.ndarray, chunk: int
    ) -> np.ndarray:
        if self._metrics is not None:
            with self._metrics.timer("cost.batch"):
                return self._object_costs_batch(obj, columns, chunk)
        return self._object_costs_batch(obj, columns, chunk)

    def _object_costs_batch(
        self, obj: int, columns: np.ndarray, chunk: int
    ) -> np.ndarray:
        unique, inverse = np.unique(columns, axis=0, return_inverse=True)
        # NumPy 2.1 returns the inverse with an extra axis under ``axis=``
        # (reverted again in 2.2); flatten so indexing below always yields
        # a (P,) result on every supported NumPy.
        inverse = np.asarray(inverse).reshape(-1)
        unique_costs = np.empty(unique.shape[0])
        misses: list = []
        keys: list = []
        for idx in range(unique.shape[0]):
            key = (obj, np.packbits(unique[idx]).tobytes())
            hit = self._cache.get(key) if self._cache_size else None
            if hit is None:
                misses.append(idx)
                keys.append(key)
                if self._cache_size:
                    self._record_miss()
            else:
                self._cache.move_to_end(key)
                self._record_hit()
                unique_costs[idx] = hit
        cost = self._instance.cost
        m = self._instance.num_sites
        to_primary = self.cost_to_primary_col(obj)
        read_w = self.read_weight_col(obj)
        write_w = self.write_weight_col(obj)
        total_w = self.total_write_weight_of(obj)
        for start in range(0, len(misses), chunk):
            block = misses[start:start + chunk]
            mask = unique[block]  # (b, M)
            # Per-row gather over the replicator set: min over the same
            # value set as the masked broadcast it replaces, so results
            # are bit-identical while peak memory drops from b*M*M to
            # b*M (rows without replicators stay at inf, as before).
            nearest = np.full((len(block), m), np.inf)
            for offset in range(len(block)):
                reps = np.nonzero(mask[offset])[0]
                if reps.size:
                    nearest[offset] = cost[:, reps].min(axis=1)
            read_term = nearest @ read_w
            nonrep = (~mask) @ (write_w * to_primary)
            rep = (mask @ to_primary) * total_w
            values = read_term + nonrep + rep
            for offset, idx in enumerate(block):
                unique_costs[idx] = values[offset]
                if self._cache_size:
                    self._cache_insert(
                        keys[start + offset], float(values[offset])
                    )
        return unique_costs[inverse]

    def object_cost_kernel(self, obj: int, column: np.ndarray) -> float:
        """Price one column through the batched kernel (cache-aware).

        Bit-identical to :meth:`object_costs_batch` on a single-row stack
        but without opening a trace span; the GA delta chains use it so
        chained and batch-evaluated offspring share one kernel (and one
        cache) and totals stay bit-identical either way.
        """
        column = np.asarray(column, dtype=bool)
        return float(self._timed_batch(obj, column[None, :], 1)[0])

    def population_costs(self, matrices) -> np.ndarray:
        """Total ``D`` of every scheme matrix in ``matrices`` (batched)."""
        mats = [self._as_matrix(m) for m in matrices]
        if not mats:
            return np.empty(0)
        totals = np.zeros(len(mats))
        for k in range(self._instance.num_objects):
            columns = np.stack([m[:, k] for m in mats])
            totals += self.object_costs_batch(k, columns)
        return totals

    def primary_only_object_cost(self, obj: int) -> float:
        """``V_prime_k``: NTC of ``obj`` replicated only at its primary."""
        if self._d_prime_per_object is None:
            self._compute_d_prime()
        return float(self._d_prime_per_object[obj])

    def _compute_d_prime(self) -> None:
        m = self._instance.num_sites
        per_object = np.empty(self._instance.num_objects)
        column = np.zeros(m, dtype=bool)
        with current_tracer().span(
            "cost.d_prime", objects=self._instance.num_objects
        ):
            for k in range(self._instance.num_objects):
                primary = int(self._instance.primaries[k])
                column[primary] = True
                per_object[k] = self.object_cost(k, column)
                column[primary] = False
        self._d_prime_per_object = per_object

    # ------------------------------------------------------------------ #
    # totals
    # ------------------------------------------------------------------ #
    def _as_matrix(self, scheme: SchemeLike) -> np.ndarray:
        if isinstance(scheme, ReplicationScheme):
            return scheme.matrix
        mat = np.asarray(scheme, dtype=bool)
        expected = (self._instance.num_sites, self._instance.num_objects)
        if mat.shape != expected:
            raise ValidationError(
                f"scheme matrix must have shape {expected}, got {mat.shape}"
            )
        return mat

    def total_cost(self, scheme: SchemeLike, cached: bool = True) -> float:
        """``D(X)`` — Eq. 4 summed over all objects."""
        mat = self._as_matrix(scheme)
        if cached and isinstance(scheme, ReplicationScheme):
            # Scheme-owned digests replace the per-lookup packbits key.
            return float(
                sum(
                    self.object_cost_cached(
                        k, mat[:, k], key=scheme.column_digest(k)
                    )
                    for k in range(self._instance.num_objects)
                )
            )
        fn = self.object_cost_cached if cached else self.object_cost
        return float(
            sum(fn(k, mat[:, k]) for k in range(self._instance.num_objects))
        )

    def d_prime(self) -> float:
        """``D_prime`` — NTC of the primary-only allocation (cached)."""
        if self._d_prime_per_object is None:
            self._compute_d_prime()
        return float(self._d_prime_per_object.sum())

    def savings_percent(self, scheme: SchemeLike) -> float:
        """The paper's quality metric: % of ``D_prime`` saved by ``scheme``.

        On degenerate instances where ``D_prime == 0`` the percentage is
        undefined; a scheme that still incurs positive cost reports
        ``-inf`` (strictly worse than primary-only) rather than masking
        the regression as ``0.0``.
        """
        d_prime = self.d_prime()
        cost = self.total_cost(scheme)
        if d_prime == 0.0:
            return 0.0 if cost == 0.0 else float("-inf")
        return 100.0 * (d_prime - cost) / d_prime

    def fitness(self, scheme: SchemeLike) -> float:
        """Normalised GA fitness ``f = (D_prime - D) / D_prime`` (can be < 0).

        ``-inf`` when ``D_prime == 0`` but the scheme's cost is positive
        (see :meth:`savings_percent`).
        """
        d_prime = self.d_prime()
        cost = self.total_cost(scheme)
        if d_prime == 0.0:
            return 0.0 if cost == 0.0 else float("-inf")
        return (d_prime - cost) / d_prime

    # ------------------------------------------------------------------ #
    # incremental deltas
    # ------------------------------------------------------------------ #
    def add_delta(
        self, scheme: ReplicationScheme, site: int, obj: int
    ) -> float:
        """Exact change in ``D`` from adding a replica of ``obj`` at ``site``.

        Negative values mean the addition reduces total cost.  Unlike the
        greedy benefit of Eq. 5 this accounts for *other* sites' reads
        being redirected to the new replica.
        """
        if scheme.holds(site, obj):
            raise ValueError(f"site {site} already holds object {obj}")
        from repro.core.incremental import single_add_delta

        return single_add_delta(self, scheme, site, obj)

    def drop_delta(
        self, scheme: ReplicationScheme, site: int, obj: int
    ) -> float:
        """Exact change in ``D`` from dropping the replica of ``obj`` at ``site``."""
        if not scheme.holds(site, obj):
            raise ValueError(f"site {site} does not hold object {obj}")
        if int(self._instance.primaries[obj]) == int(site):
            raise ValueError(f"cannot drop primary copy of object {obj}")
        from repro.core.incremental import single_drop_delta

        return single_drop_delta(self, scheme, site, obj)

    # ------------------------------------------------------------------ #
    # decomposition (Eq. 1 and Eq. 2, used by tests and the simulator)
    # ------------------------------------------------------------------ #
    def read_cost_components(self, scheme: SchemeLike) -> np.ndarray:
        """``R_ik`` of Eq. 1 for every (site, object) pair, shape (M, N)."""
        mat = self._as_matrix(scheme)
        out = np.empty_like(self._read_weight)
        cost = self._instance.cost
        for k in range(self._instance.num_objects):
            reps = np.nonzero(mat[:, k])[0]
            out[:, k] = self._read_weight[:, k] * cost[:, reps].min(axis=1)
        return out

    def write_cost_components(self, scheme: SchemeLike) -> np.ndarray:
        """``W_ik`` of Eq. 2 for every (site, object) pair, shape (M, N).

        Per the writer-side accounting of Eq. 2, site ``i`` pays for the
        primary shipment *and* the broadcast to every other replicator:
        ``w_ik * o_k * (C(i, SP_k) + sum_{j in R_k, j != i} C(SP_k, j))``.
        Summed over all (i, k) this equals the Eq. 4 write accounting.
        """
        mat = self._as_matrix(scheme)
        out = np.empty_like(self._write_weight)
        cost = self._instance.cost
        for k in range(self._instance.num_objects):
            primary = int(self._instance.primaries[k])
            reps = np.nonzero(mat[:, k])[0]
            broadcast_total = float(cost[primary, reps].sum())
            # Each writer i pays C(i, SP) plus the broadcast excluding the
            # leg back to itself when i is a replicator.
            per_writer = self._cost_to_primary[:, k] + broadcast_total
            per_writer = per_writer - np.where(
                mat[:, k], cost[primary, :], 0.0
            )
            out[:, k] = self._write_weight[:, k] * per_writer
        return out

    def cache_info(self) -> Dict[str, float]:
        """Diagnostics: cache population, capacity and hit/miss totals."""
        lookups = self._hits + self._misses
        return {
            "entries": len(self._cache),
            "capacity": self._cache_size,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "hit_rate": (self._hits / lookups) if lookups else 0.0,
        }

    def clear_cache(self) -> None:
        """Drop every memoised cost (hit/miss totals are kept)."""
        self._cache.clear()


class SparseCostModel(CostModel):
    """Blocked-kernel cost evaluator over a sparse workload.

    Accepts a :class:`~repro.workload.sparse.SparseProblem` (or anything
    whose ``reads``/``writes`` expose ``dense_block``/``column_sums``)
    and prices Eq. 4 without ever materialising the dense ``(M, N)``
    weight matrices: object-column **tiles** of width ``tile`` are
    densified on demand and held in a two-slot LRU, so peak memory is
    ``O(M * tile)`` on top of the inputs instead of ``O(M * N)``.

    Costs are **bit-identical** to :class:`CostModel` on the densified
    problem: tiles are built with the exact elementwise expressions of
    the dense constructor, per-object totals reduce over the same axis
    with the same length (NumPy's pairwise blocking depends only on the
    reduction length ``M``), and tile columns keep a non-unit stride —
    the same BLAS stride class as dense ``(M, N)`` columns — by never
    producing a width-1 tile (a trailing remainder of one column is
    merged into the previous tile).  The per-object LRU memo, the batch
    kernel and the incremental delta machinery are all inherited
    unchanged: they only consume the per-object column accessors.
    """

    has_dense_weights = False

    def __init__(
        self,
        problem,
        update_fraction: float = 1.0,
        cache_size: int = 200_000,
        metrics: Optional[MetricsRegistry] = None,
        tile: int = 256,
    ) -> None:
        if cache_size < 0:
            raise ValidationError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        if tile < 2:
            raise ValidationError(
                f"tile width must be >= 2 (width-1 tiles change the "
                f"column stride class), got {tile}"
            )
        reads = getattr(problem, "reads", None)
        if not hasattr(reads, "dense_block"):
            raise ValidationError(
                "SparseCostModel needs a sparse problem (reads/writes "
                "with dense_block); use CostModel for dense instances"
            )
        self._instance = problem
        self._uf = check_fraction(
            "update_fraction", update_fraction, allow_zero=True
        )
        self._cache: "OrderedDict[Tuple[int, bytes], float]" = OrderedDict()
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._metrics = metrics
        self._d_prime_per_object: Optional[np.ndarray] = None
        n = problem.num_objects
        width = min(int(tile), n)
        starts = list(range(0, n, width))
        # Never leave a width-1 remainder: merge it into the previous
        # tile (contiguous width-1 columns would take BLAS's unit-stride
        # dot kernel whose accumulation differs from the strided one).
        if len(starts) > 1 and n - starts[-1] == 1:
            starts.pop()
        self._tile_starts = starts
        self._tiles: "OrderedDict[int, Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]" = OrderedDict()
        self._max_tiles = 2

    # ------------------------------------------------------------------ #
    # tile machinery
    # ------------------------------------------------------------------ #
    def _tile(self, obj: int):
        """``(start, (rw, ww, ctp, tw))`` of the tile holding ``obj``."""
        starts = self._tile_starts
        lo, hi = 0, len(starts)
        while hi - lo > 1:  # rightmost start <= obj
            mid = (lo + hi) // 2
            if starts[mid] <= obj:
                lo = mid
            else:
                hi = mid
        start = starts[lo]
        entry = self._tiles.get(start)
        if entry is None:
            entry = self._build_tile(lo)
            if len(self._tiles) >= self._max_tiles:
                self._tiles.popitem(last=False)
            self._tiles[start] = entry
        else:
            self._tiles.move_to_end(start)
        return start, entry

    def _build_tile(self, pos: int):
        starts = self._tile_starts
        start = starts[pos]
        stop = (
            starts[pos + 1]
            if pos + 1 < len(starts)
            else self._instance.num_objects
        )
        inst = self._instance
        sizes = inst.sizes[start:stop]
        # The exact elementwise expressions of CostModel.__init__,
        # restricted to the column slice — elementwise products cannot
        # depend on the surrounding columns, so every entry matches the
        # dense weight matrices bit for bit.
        rw = inst.reads.dense_block(start, stop) * sizes[None, :]
        ww = (
            inst.writes.dense_block(start, stop)
            * sizes[None, :]
            * self._uf
        )
        tw = ww.sum(axis=0)
        ctp = inst.cost[:, inst.primaries[start:stop]]
        return rw, ww, ctp, tw

    @property
    def tile_width(self) -> int:
        """Nominal object-column tile width of the blocked kernel."""
        if len(self._tile_starts) > 1:
            return self._tile_starts[1] - self._tile_starts[0]
        return self._instance.num_objects

    # ------------------------------------------------------------------ #
    # column accessors (everything above them is inherited)
    # ------------------------------------------------------------------ #
    def read_weight_col(self, obj: int) -> np.ndarray:
        start, (rw, _, _, _) = self._tile(obj)
        return rw[:, obj - start]

    def write_weight_col(self, obj: int) -> np.ndarray:
        start, (_, ww, _, _) = self._tile(obj)
        return ww[:, obj - start]

    def cost_to_primary_col(self, obj: int) -> np.ndarray:
        start, (_, _, ctp, _) = self._tile(obj)
        return ctp[:, obj - start]

    def total_write_weight_of(self, obj: int) -> float:
        start, (_, _, _, tw) = self._tile(obj)
        return tw[obj - start]

    # The dense matrix properties would silently re-materialise the
    # O(M*N) arrays this model exists to avoid; fail loudly instead.
    def _no_dense(self, name: str):
        raise ValidationError(
            f"SparseCostModel does not materialise the dense {name} "
            f"matrix; use the per-object column accessors"
        )

    @property
    def read_weight(self) -> np.ndarray:
        self._no_dense("read_weight")

    @property
    def write_weight(self) -> np.ndarray:
        self._no_dense("write_weight")

    @property
    def total_write_weight(self) -> np.ndarray:
        self._no_dense("total_write_weight")

    @property
    def cost_to_primary(self) -> np.ndarray:
        self._no_dense("cost_to_primary")

    def read_cost_components(self, scheme: SchemeLike) -> np.ndarray:
        self._no_dense("read-component")

    def write_cost_components(self, scheme: SchemeLike) -> np.ndarray:
        self._no_dense("write-component")


def cost_model_for(problem, **kwargs) -> CostModel:
    """The right cost evaluator for ``problem``.

    Dense :class:`~repro.core.problem.DRPInstance` inputs get a
    :class:`CostModel`; sparse problems get a :class:`SparseCostModel`.
    ``tile`` is only meaningful for the sparse path and is dropped for
    dense models.
    """
    if isinstance(problem, DRPInstance):
        kwargs.pop("tile", None)
        return CostModel(problem, **kwargs)
    return SparseCostModel(problem, **kwargs)


def reference_total_cost(
    instance: DRPInstance,
    scheme: SchemeLike,
    update_fraction: float = 1.0,
) -> float:
    """Slow, loop-based implementation of Eq. 4 used as a test oracle.

    Mirrors the paper's formula site-by-site and object-by-object with no
    vectorisation or caching; intentionally naive.
    """
    mat = (
        scheme.matrix
        if isinstance(scheme, ReplicationScheme)
        else np.asarray(scheme, dtype=bool)
    )
    total = 0.0
    for k in range(instance.num_objects):
        size = float(instance.sizes[k])
        primary = int(instance.primaries[k])
        reps = [i for i in range(instance.num_sites) if mat[i, k]]
        total_writes = sum(
            float(instance.writes[x, k]) for x in range(instance.num_sites)
        )
        for i in range(instance.num_sites):
            if mat[i, k]:
                total += (
                    update_fraction
                    * total_writes
                    * size
                    * float(instance.cost[i, primary])
                )
            else:
                nearest = min(float(instance.cost[i, j]) for j in reps)
                total += float(instance.reads[i, k]) * size * nearest
                total += (
                    update_fraction
                    * float(instance.writes[i, k])
                    * size
                    * float(instance.cost[i, primary])
                )
    return total


__all__ = [
    "CostModel",
    "SparseCostModel",
    "cost_model_for",
    "reference_total_cost",
]
