"""Replication benefit (Eq. 5) and deallocation estimate (Eq. 6).

Eq. 5 drives the greedy SRA: the *local* NTC saving per storage unit of
placing a replica of object ``k`` at site ``i``,

``B_ik = ( r_ik * o_k * C(i, SN_ik)  -  (sum_{x != i} w_xk) * o_k * C(i, SP_k) ) / o_k``

i.e. the read traffic the replica eliminates minus the update traffic it
attracts, normalised by object size.  (The published scan garbles the
bracketing; this form is the one consistent both with the verbal
description — "difference between the NTC occurred from the current read
requests ... and the NTC arising due to the updates to that replica" —
and with the local delta of Eq. 4.)

Eq. 6 drives AGRA's fast capacity repair: a cheap O(M) estimate of how
valuable a *currently held* replica is, combining global read/update
totals, capacity-weighted local reads, the site's proportional link
weights and the object's replica degree.  Replicas with the *lowest*
estimate are deallocated first.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.incremental import eq5_benefit
from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import ValidationError


def replication_benefit(
    instance: DRPInstance,
    scheme: ReplicationScheme,
    site: int,
    obj: int,
    nearest: Optional[int] = None,
    update_fraction: float = 1.0,
) -> float:
    """Eq. 5 benefit ``B_ik`` of replicating ``obj`` at ``site``.

    ``nearest`` may pass a precomputed ``SN_ik`` (SRA maintains the table
    incrementally); otherwise it is derived from ``scheme``.  A positive
    value means the replica reduces the site's locally observed NTC.
    """
    if scheme.holds(site, obj):
        raise ValidationError(
            f"site {site} already holds object {obj}; benefit undefined"
        )
    if nearest is None:
        nearest = int(scheme.nearest_sites(obj)[site])
    other_writes = float(instance.writes[:, obj].sum()) - float(
        instance.writes[site, obj]
    )
    # The arithmetic lives in eq5_benefit, shared with the SRA scan, the
    # incremental evaluator and the distributed site nodes.
    return eq5_benefit(
        float(instance.reads[site, obj]),
        float(instance.cost[site, nearest]),
        other_writes,
        float(instance.cost[site, instance.primaries[obj]]),
        update_fraction,
    )


def benefit_matrix(
    instance: DRPInstance,
    scheme: ReplicationScheme,
    update_fraction: float = 1.0,
) -> np.ndarray:
    """All ``B_ik`` values at once, shape ``(M, N)``; NaN where already held.

    Vectorised across sites per object; used by tests and by bulk greedy
    variants.
    """
    m, n = instance.num_sites, instance.num_objects
    out = np.full((m, n), np.nan)
    total_writes = instance.writes.sum(axis=0)
    for k in range(n):
        nearest = scheme.nearest_sites(k)
        values = eq5_benefit(
            instance.reads[:, k],
            instance.cost[np.arange(m), nearest],
            total_writes[k] - instance.writes[:, k],
            instance.cost[:, instance.primaries[k]],
            update_fraction,
        )
        held = scheme.matrix[:, k]
        out[:, k] = np.where(held, np.nan, values)
    return out


def benefit_matrix_blocked(
    instance,
    scheme: ReplicationScheme,
    update_fraction: float = 1.0,
    tile: int = 256,
) -> np.ndarray:
    """Eq. 5 matrix evaluated in object-column tiles of width ``tile``.

    Accepts a dense :class:`~repro.core.problem.DRPInstance` **or** a
    sparse problem (anything whose ``reads``/``writes`` expose
    ``dense_block``/``column_sums``): read/write counts are densified
    one tile at a time, so peak extra memory is ``O(M * tile)`` instead
    of the two dense ``(M, N)`` count matrices.  Values are
    **bit-identical** to :func:`benefit_matrix` on the densified
    problem — the arithmetic is elementwise :func:`eq5_benefit` on
    exact integer gathers, which cannot depend on tiling.
    """
    if tile < 1:
        raise ValidationError(f"tile width must be >= 1, got {tile}")
    m, n = instance.num_sites, instance.num_objects
    out = np.full((m, n), np.nan)
    reads, writes = instance.reads, instance.writes
    sparse = hasattr(reads, "dense_block")
    total_writes = (
        writes.column_sums() if sparse else writes.sum(axis=0)
    )
    for start in range(0, n, tile):
        stop = min(start + tile, n)
        if sparse:
            reads_blk = reads.dense_block(start, stop)
            writes_blk = writes.dense_block(start, stop)
        else:
            reads_blk = reads[:, start:stop]
            writes_blk = writes[:, start:stop]
        for off in range(stop - start):
            k = start + off
            nearest = scheme.nearest_sites(k)
            values = eq5_benefit(
                reads_blk[:, off],
                instance.cost[np.arange(m), nearest],
                total_writes[k] - writes_blk[:, off],
                instance.cost[:, instance.primaries[k]],
                update_fraction,
            )
            held = scheme.matrix[:, k]
            out[:, k] = np.where(held, np.nan, values)
    return out


def deallocation_estimate(
    instance: DRPInstance,
    scheme: ReplicationScheme,
    site: int,
    obj: int,
) -> float:
    """Eq. 6 estimate ``E_ik`` of the value of the replica of ``obj`` at ``site``.

    Higher is more valuable; AGRA's transcription repair drops the replica
    with the *lowest* estimate when a site is over capacity.  ``site`` must
    currently hold ``obj``.
    """
    if not scheme.holds(site, obj):
        raise ValidationError(
            f"site {site} does not hold object {obj}; estimate undefined"
        )
    total_reads = float(instance.reads[:, obj].sum())
    total_writes = float(instance.writes[:, obj].sum())
    local_reads = float(instance.reads[site, obj])
    local_writes = float(instance.writes[site, obj])
    numerator = (
        total_reads
        + local_writes
        - total_writes
        + local_reads
        * float(instance.capacities[site])
        / float(instance.sizes[obj])
    )
    # Proportional link weight: the site's summed shortest-path costs
    # relative to the network-wide per-site average.  Low values mean the
    # site is centrally placed and a good nearest-neighbour for others.
    site_weight = float(instance.cost[site].sum())
    mean_weight = float(instance.cost.sum()) / instance.num_sites
    if mean_weight == 0.0:
        proportional = 1.0  # degenerate single-site / zero-cost network
    else:
        proportional = site_weight / mean_weight
        if proportional == 0.0:
            # A zero-cost site is an infinitely good neighbour; make the
            # replica maximally valuable rather than dividing by zero.
            return np.inf if numerator > 0 else -np.inf if numerator < 0 else 0.0
    degree = scheme.replica_degree(obj)
    return numerator / (proportional * degree)


def deallocation_estimates_for_site(
    instance: DRPInstance,
    scheme: ReplicationScheme,
    site: int,
    droppable_only: bool = True,
) -> np.ndarray:
    """Eq. 6 for every object held at ``site``; shape ``(N,)`` with NaN holes.

    With ``droppable_only`` (default) the primary copies hosted at ``site``
    are also NaN, since they can never be deallocated.  Vectorised across
    the held objects — AGRA's capacity repair calls this in a hot loop.
    """
    out = np.full(instance.num_objects, np.nan)
    held = scheme.objects_at(site)
    if droppable_only:
        held = held[instance.primaries[held] != site]
    if held.size == 0:
        return out
    reads_cols = instance.reads[:, held]
    writes_cols = instance.writes[:, held]
    total_reads = reads_cols.sum(axis=0)
    total_writes = writes_cols.sum(axis=0)
    local_reads = instance.reads[site, held]
    local_writes = instance.writes[site, held]
    numerator = (
        total_reads
        + local_writes
        - total_writes
        + local_reads * float(instance.capacities[site]) / instance.sizes[held]
    )
    mean_weight = float(instance.cost.sum()) / instance.num_sites
    if mean_weight == 0.0:
        proportional = 1.0
    else:
        proportional = float(instance.cost[site].sum()) / mean_weight
    degrees = scheme.matrix[:, held].sum(axis=0)
    if proportional == 0.0:
        with np.errstate(divide="ignore"):
            out[held] = np.where(
                numerator > 0, np.inf,
                np.where(numerator < 0, -np.inf, 0.0),
            )
        return out
    out[held] = numerator / (proportional * degrees)
    return out


__all__ = [
    "replication_benefit",
    "benefit_matrix",
    "benefit_matrix_blocked",
    "deallocation_estimate",
    "deallocation_estimates_for_site",
]
