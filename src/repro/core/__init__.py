"""Core DRP formulation: problem instances, schemes, costs and benefits.

This package implements Section 2 of the paper: the Data Replication
Problem inputs (:class:`DRPInstance`), replication schemes as boolean
``M x N`` matrices with the primary-copy constraint
(:class:`ReplicationScheme`), the network-transfer-cost model of
Eq. 1-4 (:class:`CostModel`), the greedy benefit value of Eq. 5
(:func:`replication_benefit`), the AGRA deallocation estimator of Eq. 6
(:func:`deallocation_estimate`) and the normalised GA fitness
(:func:`fitness_from_costs`).
"""

from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.core.cost import CostModel, SparseCostModel, cost_model_for
from repro.core.benefit import (
    benefit_matrix,
    benefit_matrix_blocked,
    deallocation_estimate,
    deallocation_estimates_for_site,
    replication_benefit,
)
from repro.core.fitness import fitness_from_costs, savings_percent
from repro.core.incremental import (
    IncrementalCostEvaluator,
    Move,
    eq5_benefit,
)
from repro.core.strategies import WriteStrategy, compare_strategies

__all__ = [
    "WriteStrategy",
    "compare_strategies",
    "DRPInstance",
    "ReplicationScheme",
    "CostModel",
    "SparseCostModel",
    "cost_model_for",
    "IncrementalCostEvaluator",
    "Move",
    "eq5_benefit",
    "replication_benefit",
    "benefit_matrix",
    "benefit_matrix_blocked",
    "deallocation_estimate",
    "deallocation_estimates_for_site",
    "fitness_from_costs",
    "savings_percent",
]
