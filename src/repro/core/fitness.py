"""Normalised fitness and savings metrics (Section 4, "Fitness value f").

The GA fitness is ``f = (D_prime - D) / D_prime`` where ``D_prime`` is the
NTC of the primary-only allocation.  The paper resets chromosomes with
``f < 0`` to the initial allocation (fitness 0); the GA engines implement
that reset, while these helpers only compute the raw values.
"""

from __future__ import annotations

from repro.errors import ValidationError


def fitness_from_costs(d_prime: float, d: float) -> float:
    """``f = (D_prime - D) / D_prime``; may be negative for bad schemes."""
    if d_prime < 0 or d < 0:
        raise ValidationError(
            f"costs must be non-negative, got d_prime={d_prime}, d={d}"
        )
    if d_prime == 0.0:
        # A zero-traffic system: every scheme is equally (vacuously) good.
        return 0.0
    return (d_prime - d) / d_prime


def savings_percent(d_prime: float, d: float) -> float:
    """The paper's reported metric: percentage of NTC saved vs primary-only."""
    return 100.0 * fitness_from_costs(d_prime, d)


__all__ = ["fitness_from_costs", "savings_percent"]
