"""The Data Replication Problem instance (Section 2, Table 1).

A :class:`DRPInstance` bundles every input of the DRP:

* ``cost`` — the symmetric per-unit transfer cost matrix ``C(i, j)``,
  assumed to be the shortest-path closure of the physical network;
* ``sizes`` — object sizes ``o_k`` in storage units;
* ``capacities`` — site storage capacities ``s_i``;
* ``reads`` / ``writes`` — the ``r_ik`` / ``w_ik`` access counts observed
  over the statistics window;
* ``primaries`` — the primary site ``SP_k`` of each object.

Instances are immutable: the adaptive workflow (Section 5) produces *new*
instances via :meth:`with_patterns` when read/write patterns change, so a
scheme computed for one pattern can be re-evaluated under another.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import InfeasibleProblemError, ValidationError
from repro.utils.validation import check_matrix, check_vector


class DRPInstance:
    """Immutable inputs of one Data Replication Problem.

    Parameters mirror Table 1 of the paper; shapes are ``(M, M)`` for
    ``cost``, ``(N,)`` for ``sizes`` and ``primaries``, ``(M,)`` for
    ``capacities`` and ``(M, N)`` for ``reads`` and ``writes``.
    """

    def __init__(
        self,
        cost: np.ndarray,
        sizes: np.ndarray,
        capacities: np.ndarray,
        reads: np.ndarray,
        writes: np.ndarray,
        primaries: np.ndarray,
        check_metric: bool = False,
    ) -> None:
        cost = check_matrix("cost", cost, non_negative=True, dtype=float)
        if cost.shape[0] != cost.shape[1]:
            raise ValidationError(
                f"cost matrix must be square, got shape {cost.shape}"
            )
        num_sites = cost.shape[0]
        if np.any(np.diagonal(cost) != 0.0):
            raise ValidationError("cost diagonal (C(i,i)) must be zero")
        if not np.allclose(cost, cost.T):
            raise ValidationError("cost matrix must be symmetric (C(i,j)=C(j,i))")

        sizes = check_vector("sizes", sizes, non_negative=True, dtype=float)
        num_objects = sizes.shape[0]
        if num_objects == 0:
            raise ValidationError("need at least one object")
        if np.any(sizes <= 0):
            raise ValidationError("object sizes must be positive")

        capacities = check_vector(
            "capacities", capacities, length=num_sites, non_negative=True,
            dtype=float,
        )
        reads = check_matrix(
            "reads", reads, shape=(num_sites, num_objects), non_negative=True,
            dtype=float,
        )
        writes = check_matrix(
            "writes", writes, shape=(num_sites, num_objects),
            non_negative=True, dtype=float,
        )
        primaries = check_vector(
            "primaries", primaries, length=num_objects, dtype=np.int64
        )
        if np.any(primaries < 0) or np.any(primaries >= num_sites):
            raise ValidationError(
                f"primaries must be site indices in [0, {num_sites})"
            )

        if check_metric:
            from repro.network.shortest_paths import is_metric

            if not is_metric(cost):
                raise ValidationError(
                    "cost matrix violates the triangle inequality; pass the "
                    "shortest-path closure (see repro.network)"
                )

        self._cost = cost
        self._sizes = sizes
        self._capacities = capacities
        self._reads = reads
        self._writes = writes
        self._primaries = primaries
        for arr in (cost, sizes, capacities, reads, writes, primaries):
            arr.setflags(write=False)

        self._check_primary_feasibility()

    def _check_primary_feasibility(self) -> None:
        load = self.primary_load()
        over = np.nonzero(load > self._capacities)[0]
        if over.size:
            site = int(over[0])
            raise InfeasibleProblemError(
                f"primary copies at site {site} need {load[site]:g} units but "
                f"its capacity is {self._capacities[site]:g}"
            )

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def num_sites(self) -> int:
        """``M`` — number of sites."""
        return self._cost.shape[0]

    @property
    def num_objects(self) -> int:
        """``N`` — number of objects."""
        return self._sizes.shape[0]

    @property
    def cost(self) -> np.ndarray:
        """``C(i, j)`` per-unit transfer cost matrix (read-only view)."""
        return self._cost

    @property
    def sizes(self) -> np.ndarray:
        """``o_k`` object sizes (read-only view)."""
        return self._sizes

    @property
    def capacities(self) -> np.ndarray:
        """``s_i`` site storage capacities (read-only view)."""
        return self._capacities

    @property
    def reads(self) -> np.ndarray:
        """``r_ik`` read counts (read-only view)."""
        return self._reads

    @property
    def writes(self) -> np.ndarray:
        """``w_ik`` write counts (read-only view)."""
        return self._writes

    @property
    def primaries(self) -> np.ndarray:
        """``SP_k`` primary site of each object (read-only view)."""
        return self._primaries

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def total_reads(self) -> np.ndarray:
        """Per-object total read counts (summed over sites)."""
        return self._reads.sum(axis=0)

    def total_writes(self) -> np.ndarray:
        """Per-object total write counts (summed over sites)."""
        return self._writes.sum(axis=0)

    def update_ratio(self) -> float:
        """Overall writes / reads ratio (the paper's ``U`` as a fraction)."""
        reads = float(self._reads.sum())
        if reads == 0.0:
            return float("inf") if self._writes.sum() > 0 else 0.0
        return float(self._writes.sum()) / reads

    def primary_load(self) -> np.ndarray:
        """Storage consumed at each site by primary copies alone."""
        load = np.zeros(self.num_sites)
        np.add.at(load, self._primaries, self._sizes)
        return load

    def capacity_ratio(self) -> float:
        """Total capacity as a fraction of total object size (paper's ``C%``)."""
        return float(self._capacities.sum()) / float(self._sizes.sum())

    def with_patterns(
        self,
        reads: Optional[np.ndarray] = None,
        writes: Optional[np.ndarray] = None,
    ) -> "DRPInstance":
        """A new instance with updated R/W patterns, same network and storage."""
        return DRPInstance(
            cost=self._cost,
            sizes=self._sizes,
            capacities=self._capacities,
            reads=self._reads if reads is None else reads,
            writes=self._writes if writes is None else writes,
            primaries=self._primaries,
        )

    # ------------------------------------------------------------------ #
    # serialisation / comparison
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable representation."""
        return {
            "cost": self._cost.tolist(),
            "sizes": self._sizes.tolist(),
            "capacities": self._capacities.tolist(),
            "reads": self._reads.tolist(),
            "writes": self._writes.tolist(),
            "primaries": self._primaries.tolist(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "DRPInstance":
        return cls(
            cost=np.asarray(data["cost"], dtype=float),
            sizes=np.asarray(data["sizes"], dtype=float),
            capacities=np.asarray(data["capacities"], dtype=float),
            reads=np.asarray(data["reads"], dtype=float),
            writes=np.asarray(data["writes"], dtype=float),
            primaries=np.asarray(data["primaries"], dtype=np.int64),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DRPInstance):
            return NotImplemented
        return (
            np.array_equal(self._cost, other._cost)
            and np.array_equal(self._sizes, other._sizes)
            and np.array_equal(self._capacities, other._capacities)
            and np.array_equal(self._reads, other._reads)
            and np.array_equal(self._writes, other._writes)
            and np.array_equal(self._primaries, other._primaries)
        )

    def __repr__(self) -> str:
        return (
            f"DRPInstance(M={self.num_sites}, N={self.num_objects}, "
            f"update_ratio={self.update_ratio():.3f}, "
            f"capacity_ratio={self.capacity_ratio():.3f})"
        )


__all__ = ["DRPInstance"]
