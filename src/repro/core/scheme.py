"""Replication schemes: the boolean ``X`` matrix of Section 2.2.

``X[i, k] = 1`` means site ``i`` holds a replica of object ``k``.  A scheme
is *valid* when (a) every object keeps a replica at its primary site and
(b) no site stores more than its capacity.  :class:`ReplicationScheme`
enforces (a) structurally — dropping a primary raises — and tracks storage
incrementally so (b) can be checked in O(1) per mutation.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.problem import DRPInstance
from repro.errors import CapacityError, PrimaryCopyError, ValidationError

#: signature of a scheme change listener: (kind, site, obj) with kind one
#: of ``"add"`` / ``"drop"``, invoked *after* the mutation landed.
ChangeListener = Callable[[str, int, int], None]


class ReplicationScheme:
    """A mutable replica placement for one :class:`DRPInstance`.

    Use :meth:`primary_only` for the paper's initial allocation (each object
    exists only at its primary site) and :meth:`from_matrix` to adopt a GA
    chromosome.  Mutations keep the per-site storage tally consistent;
    ``enforce_capacity=True`` (default) makes over-capacity mutations raise
    :class:`~repro.errors.CapacityError` up front.
    """

    def __init__(
        self,
        instance: DRPInstance,
        matrix: Optional[np.ndarray] = None,
        enforce_capacity: bool = True,
    ) -> None:
        self._instance = instance
        m, n = instance.num_sites, instance.num_objects
        if matrix is None:
            x = np.zeros((m, n), dtype=bool)
            x[instance.primaries, np.arange(n)] = True
        else:
            x = np.asarray(matrix)
            if x.shape != (m, n):
                raise ValidationError(
                    f"scheme matrix must have shape {(m, n)}, got {x.shape}"
                )
            x = x.astype(bool).copy()
            missing = np.nonzero(~x[instance.primaries, np.arange(n)])[0]
            if missing.size:
                k = int(missing[0])
                raise PrimaryCopyError(int(instance.primaries[k]), k)
        self._x = x
        self._used = x.astype(float) @ instance.sizes
        self._enforce_capacity = enforce_capacity
        self._listeners: List[ChangeListener] = []
        # Lazily-built nearest-replicator table: column k of
        # ``_nearest_cache`` is valid iff ``_nearest_valid[k]``.  An add
        # patches a valid column in O(M); a drop invalidates it (repaired
        # on next access, or incrementally by an attached evaluator).
        self._nearest_cache: Optional[np.ndarray] = None
        self._nearest_valid: Optional[np.ndarray] = None
        # Per-column packed-bit digests used as cost-cache keys; computed
        # once per mutation instead of once per cache lookup.
        self._digests: Dict[int, bytes] = {}
        if enforce_capacity:
            self.validate()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def primary_only(cls, instance: DRPInstance) -> "ReplicationScheme":
        """The initial allocation: each object only at its primary site."""
        return cls(instance)

    @classmethod
    def from_matrix(
        cls,
        instance: DRPInstance,
        matrix: np.ndarray,
        enforce_capacity: bool = True,
    ) -> "ReplicationScheme":
        """Adopt an explicit boolean placement matrix."""
        return cls(instance, matrix, enforce_capacity=enforce_capacity)

    def copy(self) -> "ReplicationScheme":
        clone = ReplicationScheme.__new__(ReplicationScheme)
        clone._instance = self._instance
        clone._x = self._x.copy()
        clone._used = self._used.copy()
        clone._enforce_capacity = self._enforce_capacity
        # Listeners watch *this* scheme, not the clone; caches rebuild
        # lazily so the clone never aliases mutable state.
        clone._listeners = []
        clone._nearest_cache = None
        clone._nearest_valid = None
        clone._digests = {}
        return clone

    # ------------------------------------------------------------------ #
    # change listeners
    # ------------------------------------------------------------------ #
    def attach_listener(self, listener: ChangeListener) -> None:
        """Call ``listener(kind, site, obj)`` after every mutation."""
        self._listeners.append(listener)

    def detach_listener(self, listener: ChangeListener) -> None:
        """Remove a previously attached listener (no-op when absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, kind: str, site: int, obj: int) -> None:
        for listener in list(self._listeners):
            listener(kind, site, obj)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> DRPInstance:
        return self._instance

    @property
    def matrix(self) -> np.ndarray:
        """The boolean ``X`` matrix (read-only view; copy to mutate)."""
        view = self._x.view()
        view.setflags(write=False)
        return view

    def holds(self, site: int, obj: int) -> bool:
        """True when ``site`` stores a replica of ``obj``."""
        return bool(self._x[site, obj])

    def replicators(self, obj: int) -> np.ndarray:
        """Sorted site indices holding object ``obj`` (paper's ``R_k``)."""
        return np.nonzero(self._x[:, obj])[0]

    def objects_at(self, site: int) -> np.ndarray:
        """Sorted object indices stored at ``site``."""
        return np.nonzero(self._x[site])[0]

    def replica_degree(self, obj: int) -> int:
        """Number of replicas of ``obj`` including the primary."""
        return int(self._x[:, obj].sum())

    def replica_degrees(self) -> np.ndarray:
        """Per-object replica counts including primaries."""
        return self._x.sum(axis=0)

    def total_replicas(self) -> int:
        """Total replica count across all objects, primaries included."""
        return int(self._x.sum())

    def extra_replicas(self) -> int:
        """Replicas created beyond the mandatory primaries.

        This is the quantity Figures 1(b) and 1(d) plot ("number of
        replicas generated").
        """
        return self.total_replicas() - self._instance.num_objects

    def used_storage(self) -> np.ndarray:
        """Per-site storage units consumed by the current placement."""
        return self._used.copy()

    def remaining_capacity(self) -> np.ndarray:
        """Per-site free storage (the paper's ``b_i``)."""
        return self._instance.capacities - self._used

    def nearest_sites(self, obj: int) -> np.ndarray:
        """For each site, its nearest replicator of ``obj`` (``SN_ik``).

        Ties break toward the lowest site index; a replicator's nearest
        site is itself (zero-cost read).  Columns are cached and patched
        incrementally on :meth:`add_replica`, so repeated lookups between
        mutations are O(1) per column.
        """
        self._ensure_nearest(obj)
        return self._nearest_cache[:, obj].copy()

    def _compute_nearest(self, obj: int) -> np.ndarray:
        reps = self.replicators(obj)
        sub = self._instance.cost[:, reps]
        return reps[np.argmin(sub, axis=1)]

    def _ensure_nearest(self, obj: int) -> None:
        if self._nearest_cache is None:
            self._nearest_cache = np.empty(
                (self._instance.num_sites, self._instance.num_objects),
                dtype=np.int64,
            )
            self._nearest_valid = np.zeros(
                self._instance.num_objects, dtype=bool
            )
        if not self._nearest_valid[obj]:
            self._nearest_cache[:, obj] = self._compute_nearest(obj)
            self._nearest_valid[obj] = True

    def _patch_nearest_add(self, site: int, obj: int) -> None:
        """Patch the cached SN column after ``site`` gained ``obj``."""
        if self._nearest_valid is None or not self._nearest_valid[obj]:
            return
        column = self._nearest_cache[:, obj]
        cost = self._instance.cost
        current = cost[np.arange(self._instance.num_sites), column]
        newer = cost[:, site]
        # Strictly closer wins; on a tie the lowest site index wins, the
        # same rule argmin applies when rebuilding from scratch.
        closer = (newer < current) | ((newer == current) & (site < column))
        column[closer] = site

    def nearest_site_matrix(self) -> np.ndarray:
        """The full ``(M, N)`` nearest-replicator table (cached)."""
        for k in range(self._instance.num_objects):
            self._ensure_nearest(k)
        return self._nearest_cache.copy()

    def column_digest(self, obj: int) -> bytes:
        """Packed-bit digest of column ``obj``, recomputed per mutation.

        The digest equals ``np.packbits(matrix[:, obj]).tobytes()`` and is
        what :meth:`repro.core.cost.CostModel.object_cost_cached` uses as
        its cache key, so scheme-driven cost lookups skip the per-call
        packing that used to dominate the cache's hot path.
        """
        digest = self._digests.get(obj)
        if digest is None:
            digest = np.packbits(self._x[:, obj]).tobytes()
            self._digests[obj] = digest
        return digest

    # ------------------------------------------------------------------ #
    # validity
    # ------------------------------------------------------------------ #
    def capacity_violations(self) -> List[Tuple[int, float, float]]:
        """Sites over capacity as ``(site, used, capacity)`` triples."""
        caps = self._instance.capacities
        return [
            (int(i), float(self._used[i]), float(caps[i]))
            for i in np.nonzero(self._used > caps + 1e-9)[0]
        ]

    def is_valid(self) -> bool:
        """True when no site exceeds its storage capacity."""
        return not self.capacity_violations()

    def validate(self) -> None:
        """Raise :class:`~repro.errors.CapacityError` on the first violation."""
        violations = self.capacity_violations()
        if violations:
            site, used, cap = violations[0]
            raise CapacityError(site, used, cap)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_replica(self, site: int, obj: int) -> None:
        """Place a replica of ``obj`` at ``site``.

        Raises :class:`~repro.errors.CapacityError` when it would not fit
        (under ``enforce_capacity``) and :class:`ValueError` when the
        replica already exists.
        """
        if self._x[site, obj]:
            raise ValueError(f"site {site} already holds object {obj}")
        size = self._instance.sizes[obj]
        if (
            self._enforce_capacity
            and self._used[site] + size > self._instance.capacities[site] + 1e-9
        ):
            raise CapacityError(
                site,
                float(self._used[site] + size),
                float(self._instance.capacities[site]),
            )
        self._x[site, obj] = True
        self._used[site] += size
        self._digests.pop(obj, None)
        self._patch_nearest_add(site, obj)
        self._notify("add", site, obj)

    def drop_replica(self, site: int, obj: int) -> None:
        """Remove the replica of ``obj`` at ``site``.

        The primary copy cannot be dropped
        (:class:`~repro.errors.PrimaryCopyError`).
        """
        if not self._x[site, obj]:
            raise ValueError(f"site {site} does not hold object {obj}")
        if int(self._instance.primaries[obj]) == int(site):
            raise PrimaryCopyError(site, obj)
        self._x[site, obj] = False
        self._used[site] -= self._instance.sizes[obj]
        self._digests.pop(obj, None)
        if self._nearest_valid is not None:
            # Sites whose nearest replicator was dropped need a rescan;
            # repaired lazily on the next access.
            self._nearest_valid[obj] = False
        self._notify("drop", site, obj)

    # ------------------------------------------------------------------ #
    # comparison / serialisation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReplicationScheme):
            return NotImplemented
        return (
            self._instance == other._instance
            and np.array_equal(self._x, other._x)
        )

    def to_dict(self) -> Dict[str, object]:
        return {"matrix": self._x.astype(int).tolist()}

    @classmethod
    def from_dict(
        cls, instance: DRPInstance, data: Dict[str, object]
    ) -> "ReplicationScheme":
        return cls(instance, np.asarray(data["matrix"], dtype=bool))

    def __repr__(self) -> str:
        return (
            f"ReplicationScheme(M={self._instance.num_sites}, "
            f"N={self._instance.num_objects}, "
            f"extra_replicas={self.extra_replicas()}, "
            f"valid={self.is_valid()})"
        )


__all__ = ["ReplicationScheme"]
