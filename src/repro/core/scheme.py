"""Replication schemes: the boolean ``X`` matrix of Section 2.2.

``X[i, k] = 1`` means site ``i`` holds a replica of object ``k``.  A scheme
is *valid* when (a) every object keeps a replica at its primary site and
(b) no site stores more than its capacity.  :class:`ReplicationScheme`
enforces (a) structurally — dropping a primary raises — and tracks storage
incrementally so (b) can be checked in O(1) per mutation.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.problem import DRPInstance
from repro.errors import CapacityError, PrimaryCopyError, ValidationError


class ReplicationScheme:
    """A mutable replica placement for one :class:`DRPInstance`.

    Use :meth:`primary_only` for the paper's initial allocation (each object
    exists only at its primary site) and :meth:`from_matrix` to adopt a GA
    chromosome.  Mutations keep the per-site storage tally consistent;
    ``enforce_capacity=True`` (default) makes over-capacity mutations raise
    :class:`~repro.errors.CapacityError` up front.
    """

    def __init__(
        self,
        instance: DRPInstance,
        matrix: Optional[np.ndarray] = None,
        enforce_capacity: bool = True,
    ) -> None:
        self._instance = instance
        m, n = instance.num_sites, instance.num_objects
        if matrix is None:
            x = np.zeros((m, n), dtype=bool)
            x[instance.primaries, np.arange(n)] = True
        else:
            x = np.asarray(matrix)
            if x.shape != (m, n):
                raise ValidationError(
                    f"scheme matrix must have shape {(m, n)}, got {x.shape}"
                )
            x = x.astype(bool).copy()
            missing = np.nonzero(~x[instance.primaries, np.arange(n)])[0]
            if missing.size:
                k = int(missing[0])
                raise PrimaryCopyError(int(instance.primaries[k]), k)
        self._x = x
        self._used = x.astype(float) @ instance.sizes
        self._enforce_capacity = enforce_capacity
        if enforce_capacity:
            self.validate()

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def primary_only(cls, instance: DRPInstance) -> "ReplicationScheme":
        """The initial allocation: each object only at its primary site."""
        return cls(instance)

    @classmethod
    def from_matrix(
        cls,
        instance: DRPInstance,
        matrix: np.ndarray,
        enforce_capacity: bool = True,
    ) -> "ReplicationScheme":
        """Adopt an explicit boolean placement matrix."""
        return cls(instance, matrix, enforce_capacity=enforce_capacity)

    def copy(self) -> "ReplicationScheme":
        clone = ReplicationScheme.__new__(ReplicationScheme)
        clone._instance = self._instance
        clone._x = self._x.copy()
        clone._used = self._used.copy()
        clone._enforce_capacity = self._enforce_capacity
        return clone

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> DRPInstance:
        return self._instance

    @property
    def matrix(self) -> np.ndarray:
        """The boolean ``X`` matrix (read-only view; copy to mutate)."""
        view = self._x.view()
        view.setflags(write=False)
        return view

    def holds(self, site: int, obj: int) -> bool:
        """True when ``site`` stores a replica of ``obj``."""
        return bool(self._x[site, obj])

    def replicators(self, obj: int) -> np.ndarray:
        """Sorted site indices holding object ``obj`` (paper's ``R_k``)."""
        return np.nonzero(self._x[:, obj])[0]

    def objects_at(self, site: int) -> np.ndarray:
        """Sorted object indices stored at ``site``."""
        return np.nonzero(self._x[site])[0]

    def replica_degree(self, obj: int) -> int:
        """Number of replicas of ``obj`` including the primary."""
        return int(self._x[:, obj].sum())

    def replica_degrees(self) -> np.ndarray:
        """Per-object replica counts including primaries."""
        return self._x.sum(axis=0)

    def total_replicas(self) -> int:
        """Total replica count across all objects, primaries included."""
        return int(self._x.sum())

    def extra_replicas(self) -> int:
        """Replicas created beyond the mandatory primaries.

        This is the quantity Figures 1(b) and 1(d) plot ("number of
        replicas generated").
        """
        return self.total_replicas() - self._instance.num_objects

    def used_storage(self) -> np.ndarray:
        """Per-site storage units consumed by the current placement."""
        return self._used.copy()

    def remaining_capacity(self) -> np.ndarray:
        """Per-site free storage (the paper's ``b_i``)."""
        return self._instance.capacities - self._used

    def nearest_sites(self, obj: int) -> np.ndarray:
        """For each site, its nearest replicator of ``obj`` (``SN_ik``).

        Ties break toward the lowest site index; a replicator's nearest
        site is itself (zero-cost read).
        """
        reps = self.replicators(obj)
        sub = self._instance.cost[:, reps]
        return reps[np.argmin(sub, axis=1)]

    def nearest_site_matrix(self) -> np.ndarray:
        """The full ``(M, N)`` nearest-replicator table."""
        out = np.empty((self._instance.num_sites, self._instance.num_objects),
                       dtype=np.int64)
        for k in range(self._instance.num_objects):
            out[:, k] = self.nearest_sites(k)
        return out

    # ------------------------------------------------------------------ #
    # validity
    # ------------------------------------------------------------------ #
    def capacity_violations(self) -> List[Tuple[int, float, float]]:
        """Sites over capacity as ``(site, used, capacity)`` triples."""
        caps = self._instance.capacities
        return [
            (int(i), float(self._used[i]), float(caps[i]))
            for i in np.nonzero(self._used > caps + 1e-9)[0]
        ]

    def is_valid(self) -> bool:
        """True when no site exceeds its storage capacity."""
        return not self.capacity_violations()

    def validate(self) -> None:
        """Raise :class:`~repro.errors.CapacityError` on the first violation."""
        violations = self.capacity_violations()
        if violations:
            site, used, cap = violations[0]
            raise CapacityError(site, used, cap)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add_replica(self, site: int, obj: int) -> None:
        """Place a replica of ``obj`` at ``site``.

        Raises :class:`~repro.errors.CapacityError` when it would not fit
        (under ``enforce_capacity``) and :class:`ValueError` when the
        replica already exists.
        """
        if self._x[site, obj]:
            raise ValueError(f"site {site} already holds object {obj}")
        size = self._instance.sizes[obj]
        if (
            self._enforce_capacity
            and self._used[site] + size > self._instance.capacities[site] + 1e-9
        ):
            raise CapacityError(
                site,
                float(self._used[site] + size),
                float(self._instance.capacities[site]),
            )
        self._x[site, obj] = True
        self._used[site] += size

    def drop_replica(self, site: int, obj: int) -> None:
        """Remove the replica of ``obj`` at ``site``.

        The primary copy cannot be dropped
        (:class:`~repro.errors.PrimaryCopyError`).
        """
        if not self._x[site, obj]:
            raise ValueError(f"site {site} does not hold object {obj}")
        if int(self._instance.primaries[obj]) == int(site):
            raise PrimaryCopyError(site, obj)
        self._x[site, obj] = False
        self._used[site] -= self._instance.sizes[obj]

    # ------------------------------------------------------------------ #
    # comparison / serialisation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReplicationScheme):
            return NotImplemented
        return (
            self._instance == other._instance
            and np.array_equal(self._x, other._x)
        )

    def to_dict(self) -> Dict[str, object]:
        return {"matrix": self._x.astype(int).tolist()}

    @classmethod
    def from_dict(
        cls, instance: DRPInstance, data: Dict[str, object]
    ) -> "ReplicationScheme":
        return cls(instance, np.asarray(data["matrix"], dtype=bool))

    def __repr__(self) -> str:
        return (
            f"ReplicationScheme(M={self._instance.num_sites}, "
            f"N={self._instance.num_objects}, "
            f"extra_replicas={self.extra_replicas()}, "
            f"valid={self.is_valid()})"
        )


__all__ = ["ReplicationScheme"]
