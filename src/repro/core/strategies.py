"""Alternative write/consistency strategies under the same cost model.

Section 2.2 notes the framework "can be used with minor changes to
formalize various replication and consistency strategies".  This module
makes three of them concrete:

* ``PRIMARY_BROADCAST`` — the paper's policy (Eq. 4): writers ship the
  object to the primary, which broadcasts it to every replicator.
* ``WRITER_MULTICAST`` — writers ship the update directly to every
  replicator (no primary relay).  Cheaper when writers sit close to the
  replicas; the classic eager update-everywhere scheme.
* ``INVALIDATION`` — writers update only the primary; replicas are
  merely invalidated (control traffic, cost-free per the paper's
  convention).  A read that hits a stale replica refetches the object
  from the primary and revalidates the local copy.

The first two are exact closed forms (the simulator matches them to
float precision).  Invalidation's cost depends on the read/write
*interleaving*, so the closed form here is the standard stationary
approximation — each read finds its local replica stale with probability
``w_k / (w_k + r_ik-rate share)`` — and the discrete-event simulator
(:class:`repro.sim.ReplicaSystem` with ``write_strategy="invalidation"``)
provides ground truth; tests bound the approximation error.
"""

from __future__ import annotations

import enum
from typing import Dict, Union

import numpy as np

from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import ValidationError

SchemeLike = Union[ReplicationScheme, np.ndarray]


class WriteStrategy(str, enum.Enum):
    """How updates propagate to replicas."""

    PRIMARY_BROADCAST = "primary-broadcast"
    WRITER_MULTICAST = "writer-multicast"
    INVALIDATION = "invalidation"


def _as_matrix(instance: DRPInstance, scheme: SchemeLike) -> np.ndarray:
    if isinstance(scheme, ReplicationScheme):
        return scheme.matrix
    mat = np.asarray(scheme, dtype=bool)
    expected = (instance.num_sites, instance.num_objects)
    if mat.shape != expected:
        raise ValidationError(
            f"scheme matrix must have shape {expected}, got {mat.shape}"
        )
    return mat


def object_cost(
    instance: DRPInstance,
    obj: int,
    column: np.ndarray,
    strategy: WriteStrategy = WriteStrategy.PRIMARY_BROADCAST,
    update_fraction: float = 1.0,
) -> float:
    """NTC of one object under the given write strategy."""
    strategy = WriteStrategy(strategy)
    mask = np.asarray(column, dtype=bool)
    reps = np.nonzero(mask)[0]
    cost = instance.cost
    size = float(instance.sizes[obj])
    reads = instance.reads[:, obj]
    writes = instance.writes[:, obj]
    primary = int(instance.primaries[obj])
    nearest_cost = cost[:, reps].min(axis=1)
    uf = update_fraction

    if strategy is WriteStrategy.PRIMARY_BROADCAST:
        read_term = float(reads @ nearest_cost) * size
        to_primary = cost[:, primary]
        nonrep = float(writes[~mask] @ to_primary[~mask])
        rep = float(to_primary[mask].sum() * writes.sum())
        return read_term + uf * size * (nonrep + rep)

    if strategy is WriteStrategy.WRITER_MULTICAST:
        read_term = float(reads @ nearest_cost) * size
        # each writer pays the direct shipment to every replicator
        # (its own replica, if any, is free: C(s, s) = 0)
        per_writer = cost[:, reps].sum(axis=1)
        write_term = float(writes @ per_writer)
        return read_term + uf * size * write_term

    # INVALIDATION (stationary approximation):
    total_writes = float(writes.sum())
    to_primary = cost[:, primary]
    # writers always ship the new version to the primary
    write_term = float(writes @ to_primary)
    # each site's reads go to its nearest replica, but a share of them
    # find it stale and refetch from the primary instead.  The share of
    # stale hits at a replica approximates w / (w + r_total_at_replica);
    # we use the per-site interleaving w_k/(w_k + r_ik) which is exact
    # for a single reading site and conservative otherwise.  Reads served
    # by the primary itself are never stale.
    read_term = 0.0
    for i in range(instance.num_sites):
        r = float(reads[i])
        if r == 0.0:
            continue
        nearest = float(nearest_cost[i])
        if total_writes == 0.0 or nearest_cost[i] == cost[i, primary]:
            read_term += r * nearest
            continue
        stale_share = total_writes / (total_writes + r)
        read_term += r * (
            (1.0 - stale_share) * nearest
            + stale_share * float(cost[i, primary])
        )
    return size * (read_term + uf * write_term)


def total_cost(
    instance: DRPInstance,
    scheme: SchemeLike,
    strategy: WriteStrategy = WriteStrategy.PRIMARY_BROADCAST,
    update_fraction: float = 1.0,
) -> float:
    """Total NTC under the given write strategy."""
    mat = _as_matrix(instance, scheme)
    return float(
        sum(
            object_cost(instance, k, mat[:, k], strategy, update_fraction)
            for k in range(instance.num_objects)
        )
    )


def compare_strategies(
    instance: DRPInstance,
    scheme: SchemeLike,
    update_fraction: float = 1.0,
) -> Dict[WriteStrategy, float]:
    """Total NTC of the same placement under every strategy."""
    return {
        strategy: total_cost(instance, scheme, strategy, update_fraction)
        for strategy in WriteStrategy
    }


__all__ = ["WriteStrategy", "object_cost", "total_cost", "compare_strategies"]
