"""Incremental evaluation of the Eq. 4 cost under single-replica moves.

Every optimisation layer in this reproduction — SRA's greedy scan, the
GA population evaluators, local search, the adaptive loop — explores the
scheme space one replica flip at a time, yet historically priced each
flip with a full per-object recompute (an ``O(M * R_k)`` nearest-replica
min-reduction plus cache-key packing).  The change in Eq. 4 under one
flip only needs the flipped site's write terms and the read terms of the
sites whose nearest replica changed, which is ``O(M)`` once the
nearest-replica structure is maintained incrementally.

:class:`IncrementalCostEvaluator` wraps a :class:`~repro.core.cost.
CostModel` and a :class:`~repro.core.scheme.ReplicationScheme` and
maintains, per object:

* the current per-object cost term of Eq. 4;
* each site's nearest replicator id and distance **and** its
  second-nearest (the two-nearest invariant), so dropping a replica
  repairs the nearest table in ``O(M)`` without a full rescan — only
  rows that pointed at the dropped site fall back to their second
  choice, and only those rows rescan for a new runner-up;
* the object's write-sum (sum of replicator-to-primary costs).

Deltas are **exact**, not estimates: every value is computed with the
same arithmetic expressions (same operand order, same reductions) as
``CostModel._object_cost``, so evaluator costs are bit-identical to the
full recompute and algorithms produce identical schemes whichever path
they price moves through.  The property suite pins this equality against
:func:`~repro.core.cost.reference_total_cost`.

Consistency with the wrapped scheme is listener-based: the evaluator
subscribes to the scheme's change notifications, so *any* mutation —
through :meth:`IncrementalCostEvaluator.apply` or a direct
``scheme.add_replica`` — patches the evaluator state atomically with the
mutation.  Priced moves are version-stamped; applying a move priced
against a state that has since changed raises
:class:`~repro.errors.StaleEvaluatorError` instead of silently
mis-accounting.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.core.cost import CostModel
from repro.core.scheme import ReplicationScheme
from repro.errors import StaleEvaluatorError, ValidationError
from repro.utils.tracing import current_tracer

#: move kinds understood by :meth:`IncrementalCostEvaluator.apply`
ADD = "add"
DROP = "drop"

#: ``ndarray.sum()`` dispatches here after two wrapper frames; binding
#: the ufunc directly keeps the identical C reduction without them
_add_reduce = np.add.reduce


def eq5_benefit(read_count, nearest_cost, other_writes, cost_to_primary,
                update_fraction: float = 1.0):
    """The Eq. 5 benefit ``B_ik`` (read gain minus attracted updates).

    Accepts scalars or aligned arrays; this is the single definition of
    the benefit arithmetic shared by :mod:`repro.core.benefit`, the SRA
    scan and the distributed :class:`~repro.distributed.node.SiteNode`,
    keeping their values bit-identical by construction.
    """
    return (
        read_count * nearest_cost
        - update_fraction * other_writes * cost_to_primary
    )


@dataclass(frozen=True)
class Move:
    """One priced single-replica move, stamped with the evaluator state.

    ``delta`` is the exact change in total cost ``D`` the move would
    cause; ``version`` identifies the evaluator state the delta was
    priced against (:meth:`IncrementalCostEvaluator.apply` refuses moves
    whose version no longer matches).
    """

    kind: str
    site: int
    obj: int
    delta: float
    version: int


class _Undo:
    """Snapshot of one object's state rows, for :meth:`revert`."""

    __slots__ = ("kind", "site", "obj", "d1", "n1", "d2", "n2", "cost",
                 "version", "col_version")

    def __init__(self, kind, site, obj, d1, n1, d2, n2, cost, version,
                 col_version):
        self.kind = kind
        self.site = site
        self.obj = obj
        self.d1 = d1
        self.n1 = n1
        self.d2 = d2
        self.n2 = n2
        self.cost = cost
        self.version = version
        self.col_version = col_version


def _two_nearest(
    cost: np.ndarray, reps: np.ndarray, rows: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Nearest and second-nearest replicator (id, distance) per site.

    Ties break toward the lowest replicator index (``reps`` is sorted and
    argmin returns the first occurrence), matching
    :meth:`ReplicationScheme.nearest_sites`.  With a single replicator
    the second slot is ``(-1, inf)``.
    """
    sub = cost[:, reps] if rows is None else cost[np.ix_(rows, reps)]
    m = sub.shape[0]
    idx = np.arange(m)
    first = np.argmin(sub, axis=1)
    d1 = sub[idx, first]
    n1 = reps[first]
    if reps.size == 1:
        d2 = np.full(m, np.inf)
        n2 = np.full(m, -1, dtype=np.int64)
    else:
        masked = sub.copy()
        masked[idx, first] = np.inf
        second = np.argmin(masked, axis=1)
        d2 = masked[idx, second]
        n2 = reps[second]
    return (
        np.ascontiguousarray(d1),
        np.ascontiguousarray(n1.astype(np.int64)),
        np.ascontiguousarray(d2),
        np.ascontiguousarray(n2.astype(np.int64)),
    )


class IncrementalCostEvaluator:
    """Exact O(M) pricing and maintenance of single-replica moves.

    Parameters
    ----------
    model:
        Cost model supplying the read/write weights (and, when set, the
        :class:`~repro.utils.metrics.MetricsRegistry` the evaluator's
        ``cost.delta_*`` counters and ``cost.delta`` timer flow into).
    scheme:
        The live scheme.  The evaluator attaches a change listener, so
        every mutation — its own :meth:`apply` or direct calls on the
        scheme — updates the cached state atomically.
    max_undo:
        Bounded depth of the :meth:`revert` history (older snapshots are
        discarded silently).
    """

    #: priced deltas between sampled ``cost.delta`` trace events
    _DELTA_SAMPLE = 1024

    def __init__(
        self,
        model: CostModel,
        scheme: ReplicationScheme,
        max_undo: int = 32,
    ) -> None:
        if scheme.instance is not model.instance and (
            scheme.instance != model.instance
        ):
            raise ValidationError(
                "scheme and cost model must share one instance"
            )
        self._model = model
        self._scheme = scheme
        self._instance = model.instance
        self._cost = self._instance.cost
        # Contiguous site-major rows: self._cost_T[site] is the distance
        # vector used by add pricing (elementwise only, so the layout
        # change cannot alter any reduction).
        self._cost_T = np.ascontiguousarray(self._cost.T)
        # Live view of the scheme's X matrix; mutated in place by the
        # scheme, so one lookup serves every delta.
        self._x = scheme.matrix
        self._bind_weights(model)
        m, n = self._instance.num_sites, self._instance.num_objects
        self._d1 = np.empty((n, m))
        self._d2 = np.empty((n, m))
        self._n1 = np.empty((n, m), dtype=np.int64)
        self._n2 = np.empty((n, m), dtype=np.int64)
        self._num_objects = n
        self._obj_cost: List[float] = [0.0] * n
        for k in range(n):
            self._rebuild_object(k)
        # Delta memo: a priced delta stays valid until its object's
        # column changes, so local search re-sampling the same (site,
        # obj) pays one dict probe instead of a re-price.  Hits return
        # the identical float computed earlier against the identical
        # column — bit-equal by construction.  Keys are flat ints
        # (site * N + obj): cheaper to hash than tuples on this path.
        self._primaries_list = [int(p) for p in self._instance.primaries]
        self._col_version: List[int] = [0] * n
        self._col_counter = 0
        self._memo_add: dict = {}
        self._memo_drop: dict = {}
        self._version = 0
        self._undo: Deque[_Undo] = deque(maxlen=max_undo)
        self._suppress = False
        self._priced = 0
        self._applied = 0
        self._reverted = 0
        scheme.attach_listener(self._on_scheme_change)

    def _bind_weights(self, model: CostModel) -> None:
        # Shared references, not copies: _column_cost must index these
        # exactly like CostModel._object_cost does (same views, same
        # strides) so the dot products take the same accumulation path
        # and results stay bit-identical to the full recompute.
        self._dense_weights = getattr(model, "has_dense_weights", True)
        if self._dense_weights:
            self._read_weight = model.read_weight
            self._write_weight = model.write_weight
            self._ctp_all = model.cost_to_primary
            self._total_w = model.total_write_weight
            self._write_totals = self._instance.writes.sum(axis=0)
            # Object-major contiguous rows for the boolean gathers below.
            # Gather outputs are freshly contiguous whatever the source
            # layout, so the dot/sum operands (and hence the bits) are
            # unchanged — only the gather itself gets cheaper.
            self._ww_T = np.ascontiguousarray(self._write_weight.T)
            self._ctp_T = np.ascontiguousarray(self._ctp_all.T)
        else:
            # Sparse-backed model: weights stay tiled inside the model
            # and are fetched per object through the column accessors
            # (tile columns keep the dense columns' stride class, and
            # gather outputs are freshly contiguous either way, so the
            # reductions below are bit-identical to the dense branch).
            self._read_weight = None
            self._write_weight = None
            self._ctp_all = None
            self._total_w = None
            self._ww_T = None
            self._ctp_T = None
            self._write_totals = self._instance.writes.column_sums()
        self._metrics = model.metrics

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    @property
    def scheme(self) -> ReplicationScheme:
        return self._scheme

    @property
    def model(self) -> CostModel:
        return self._model

    @property
    def version(self) -> int:
        """Monotonic state stamp; bumps per mutation, restored by revert."""
        return self._version

    def total_cost(self) -> float:
        """Current ``D(X)``; summed in the same order as the full path."""
        return float(sum(self._obj_cost))

    def object_cost(self, obj: int) -> float:
        """Current Eq. 4 term of one object."""
        return self._obj_cost[obj]

    def nearest_distance(self, site: int, obj: int) -> float:
        """Maintained ``C(site, SN_site,obj)`` (0 for replicators)."""
        return float(self._d1[obj, site])

    def nearest_distances(self, obj: int) -> np.ndarray:
        """Per-site nearest-replica distances of one object (copy)."""
        return self._d1[obj].copy()

    # ------------------------------------------------------------------ #
    # state construction / repair
    # ------------------------------------------------------------------ #
    def _rebuild_object(self, obj: int) -> None:
        reps = self._scheme.replicators(obj)
        d1, n1, d2, n2 = _two_nearest(self._cost, reps)
        self._d1[obj] = d1
        self._n1[obj] = n1
        self._d2[obj] = d2
        self._n2[obj] = n2
        self._obj_cost[obj] = self._column_cost(
            obj, self._x[:, obj], self._d1[obj]
        )

    def _column_cost(
        self, obj: int, mask: np.ndarray, d1: np.ndarray
    ) -> float:
        """Eq. 4 term from a nearest-distance row.

        Mirrors ``CostModel._object_cost`` expression by expression —
        same operand views, same strides, same reduction order — so the
        result is bit-identical to the full recompute whenever ``d1``
        equals the nearest-replica distances.
        """
        # read_term copies the weight column contiguous before the dot,
        # matching CostModel._object_cost: vector layout steers BLAS
        # onto a different accumulation path, and this is the one term
        # where that matters.
        if self._dense_weights:
            read_term = float(
                np.ascontiguousarray(self._read_weight[:, obj]) @ d1
            )
            to_primary = self._ctp_T[obj]
            write_col = self._ww_T[obj]
            total_w = self._total_w[obj]
        else:
            model = self._model
            read_term = float(
                np.ascontiguousarray(model.read_weight_col(obj)) @ d1
            )
            to_primary = model.cost_to_primary_col(obj)
            write_col = model.write_weight_col(obj)
            total_w = model.total_write_weight_of(obj)
        nonrep = ~mask
        nonrep_writes = float(
            write_col[nonrep] @ to_primary[nonrep]
        )
        rep_writes = float(
            _add_reduce(to_primary[mask]) * total_w
        )
        return read_term + nonrep_writes + rep_writes

    # ------------------------------------------------------------------ #
    # pricing
    # ------------------------------------------------------------------ #
    def delta_add(self, site: int, obj: int) -> float:
        """Exact change in ``D`` from adding a replica of ``obj`` at ``site``."""
        if self._x[site, obj]:
            raise ValueError(f"site {site} already holds object {obj}")
        version = self._col_version[obj]
        key = site * self._num_objects + obj
        hit = self._memo_add.get(key)
        self._priced += 1
        if self._priced % self._DELTA_SAMPLE == 1:
            self._trace_priced()
        if hit is not None and hit[0] == version:
            return hit[1]
        metrics = self._metrics
        if metrics is not None:
            with metrics.timer("cost.delta"):
                delta = self._delta_add(site, obj)
            metrics.increment("cost.delta_add")
        else:
            delta = self._delta_add(site, obj)
        self._memo_add[key] = (version, delta)
        return delta

    def _delta_add(self, site: int, obj: int) -> float:
        d1_new = np.minimum(self._d1[obj], self._cost_T[site])
        mask = self._x[:, obj].copy()
        mask[site] = True
        after = self._column_cost(obj, mask, d1_new)
        return after - self._obj_cost[obj]

    def delta_drop(self, site: int, obj: int) -> float:
        """Exact change in ``D`` from dropping the replica of ``obj`` at ``site``."""
        if not self._x[site, obj]:
            raise ValueError(f"site {site} does not hold object {obj}")
        if self._primaries_list[obj] == site:
            raise ValueError(f"cannot drop primary copy of object {obj}")
        version = self._col_version[obj]
        key = site * self._num_objects + obj
        hit = self._memo_drop.get(key)
        self._priced += 1
        if self._priced % self._DELTA_SAMPLE == 1:
            self._trace_priced()
        if hit is not None and hit[0] == version:
            return hit[1]
        metrics = self._metrics
        if metrics is not None:
            with metrics.timer("cost.delta"):
                delta = self._delta_drop(site, obj)
            metrics.increment("cost.delta_drop")
        else:
            delta = self._delta_drop(site, obj)
        self._memo_drop[key] = (version, delta)
        return delta

    def _delta_drop(self, site: int, obj: int) -> float:
        affected = self._n1[obj] == site
        d1_new = np.where(affected, self._d2[obj], self._d1[obj])
        mask = self._x[:, obj].copy()
        mask[site] = False
        after = self._column_cost(obj, mask, d1_new)
        return after - self._obj_cost[obj]

    def move_add(self, site: int, obj: int) -> Move:
        """Price an add and stamp it for :meth:`apply`."""
        return Move(ADD, site, obj, self.delta_add(site, obj),
                    self._version)

    def move_drop(self, site: int, obj: int) -> Move:
        """Price a drop and stamp it for :meth:`apply`."""
        return Move(DROP, site, obj, self.delta_drop(site, obj),
                    self._version)

    def benefits(self, site: int, objs: np.ndarray) -> np.ndarray:
        """Eq. 5 benefit of replicating each of ``objs`` at ``site``.

        Uses the maintained nearest-distance table; the arithmetic is
        :func:`eq5_benefit`, shared with :mod:`repro.core.benefit`.
        """
        inst = self._instance
        if self._dense_weights:
            reads_row = inst.reads[site, objs]
            writes_row = inst.writes[site, objs]
        else:
            # Integer gathers from densified rows — exact, so the
            # benefit arithmetic below is unchanged bit for bit.
            reads_row = inst.reads.row_dense(site)[objs]
            writes_row = inst.writes.row_dense(site)[objs]
        other_writes = self._write_totals[objs] - writes_row
        return eq5_benefit(
            reads_row,
            self._d1[objs, site],
            other_writes,
            inst.cost[site, inst.primaries[objs]],
            self._model.update_fraction,
        )

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def apply(self, move: Move) -> float:
        """Realise a priced move on the scheme (and, via the listener,
        on the evaluator state).  Returns the move's delta.

        Raises :class:`~repro.errors.StaleEvaluatorError` when the scheme
        mutated since the move was priced.
        """
        if move.version != self._version:
            raise StaleEvaluatorError(move.version, self._version)
        if move.kind == ADD:
            self._scheme.add_replica(move.site, move.obj)
        elif move.kind == DROP:
            self._scheme.drop_replica(move.site, move.obj)
        else:
            raise ValidationError(f"unknown move kind {move.kind!r}")
        return move.delta

    def apply_add(self, site: int, obj: int) -> None:
        """Add a replica through the evaluator (no staleness window)."""
        self._scheme.add_replica(site, obj)

    def apply_drop(self, site: int, obj: int) -> None:
        """Drop a replica through the evaluator (no staleness window)."""
        self._scheme.drop_replica(site, obj)

    def revert(self) -> None:
        """Undo the most recent mutation (evaluator- or scheme-driven).

        Restores the scheme, the cached state *and* the version stamp, so
        moves priced before the reverted mutation become valid again.
        """
        if not self._undo:
            raise ValidationError("nothing to revert")
        record = self._undo.pop()
        self._suppress = True
        try:
            if record.kind == ADD:
                self._scheme.drop_replica(record.site, record.obj)
            else:
                self._scheme.add_replica(record.site, record.obj)
        finally:
            self._suppress = False
        obj = record.obj
        self._d1[obj] = record.d1
        self._n1[obj] = record.n1
        self._d2[obj] = record.d2
        self._n2[obj] = record.n2
        self._obj_cost[obj] = record.cost
        self._version = record.version
        # The column is back to its pre-mutation content, so deltas
        # memoised against it become valid again.
        self._col_version[obj] = record.col_version
        self._reverted += 1
        if self._metrics is not None:
            self._metrics.increment("cost.delta_revert")

    def detach(self) -> None:
        """Stop tracking the scheme (listener removed; state frozen)."""
        self._scheme.detach_listener(self._on_scheme_change)

    # ------------------------------------------------------------------ #
    # listener (single update path for apply() and direct mutations)
    # ------------------------------------------------------------------ #
    def _on_scheme_change(self, kind: str, site: int, obj: int) -> None:
        if self._suppress:
            return
        self._undo.append(
            _Undo(
                kind, site, obj,
                self._d1[obj].copy(), self._n1[obj].copy(),
                self._d2[obj].copy(), self._n2[obj].copy(),
                self._obj_cost[obj], self._version,
                self._col_version[obj],
            )
        )
        # Fresh column version: memoised deltas of this object no longer
        # match.  The counter is never reused, so entries priced against
        # any since-abandoned column can never resurface.
        self._col_counter += 1
        self._col_version[obj] = self._col_counter
        if kind == ADD:
            self._state_add(site, obj)
        else:
            self._state_drop(site, obj)
        self._obj_cost[obj] = self._column_cost(
            obj, self._x[:, obj], self._d1[obj]
        )
        self._version += 1
        self._applied += 1
        if self._metrics is not None:
            self._metrics.increment("cost.delta_apply")

    def _state_add(self, site: int, obj: int) -> None:
        c = self._cost_T[site]
        d1, d2 = self._d1[obj], self._d2[obj]
        n1, n2 = self._n1[obj], self._n2[obj]
        closer = c < d1
        d2[closer] = d1[closer]
        n2[closer] = n1[closer]
        d1[closer] = c[closer]
        n1[closer] = site
        second = ~closer & (c < d2)
        d2[second] = c[second]
        n2[second] = site

    def _state_drop(self, site: int, obj: int) -> None:
        n1, n2 = self._n1[obj], self._n2[obj]
        affected = np.nonzero((n1 == site) | (n2 == site))[0]
        if affected.size == 0:
            return
        reps = self._scheme.replicators(obj)  # post-drop
        d1, r1, d2, r2 = _two_nearest(self._cost, reps, rows=affected)
        self._d1[obj][affected] = d1
        self._n1[obj][affected] = r1
        self._d2[obj][affected] = d2
        self._n2[obj][affected] = r2

    def _trace_priced(self) -> None:
        tracer = current_tracer()
        if tracer.enabled:
            # Sampled: one event per _DELTA_SAMPLE priced deltas keeps
            # `repro trace` able to compare full-kernel vs incremental
            # evaluation volumes without flooding the ring buffer.
            tracer.event(
                "cost.delta",
                priced=self._priced,
                applied=self._applied,
                reverted=self._reverted,
            )

    # ------------------------------------------------------------------ #
    # epoch rebinding and self-checks
    # ------------------------------------------------------------------ #
    def rebind_model(self, model: CostModel) -> None:
        """Adopt a model with new read/write patterns, keeping the
        nearest-replica state.

        The adaptive loop drifts patterns per epoch while the network (cost
        matrix, sizes, primaries) stays fixed; the nearest tables depend
        only on the latter, so only the weights and per-object cost terms
        need recomputing — O(M*N) instead of a full O(M*N*R) rebuild.
        """
        inst = model.instance
        if (
            inst.num_sites != self._instance.num_sites
            or inst.num_objects != self._instance.num_objects
        ):
            raise StaleEvaluatorError(
                message=(
                    f"rebind_model got a problem of shape "
                    f"({inst.num_sites} sites, {inst.num_objects} "
                    f"objects) but the evaluator state was built for "
                    f"({self._instance.num_sites}, "
                    f"{self._instance.num_objects}); build a fresh "
                    f"evaluator and re-price the move"
                )
            )
        if (
            not np.array_equal(inst.cost, self._instance.cost)
            or not np.array_equal(inst.sizes, self._instance.sizes)
            or not np.array_equal(inst.primaries, self._instance.primaries)
        ):
            raise ValidationError(
                "rebind_model requires the same network, sizes and "
                "primaries; only read/write patterns may differ"
            )
        self._model = model
        self._instance = inst
        self._cost = inst.cost
        self._bind_weights(model)
        matrix = self._scheme.matrix
        for k in range(inst.num_objects):
            self._obj_cost[k] = self._column_cost(
                k, matrix[:, k], self._d1[k]
            )
        self._undo.clear()
        # Deltas were priced under the old weights.
        self._memo_add.clear()
        self._memo_drop.clear()
        self._version += 1

    def consistency_check(self) -> None:
        """Assert the cached state matches a from-scratch rebuild (tests)."""
        matrix = self._scheme.matrix
        for k in range(self._instance.num_objects):
            reps = self._scheme.replicators(k)
            d1, _, d2, _ = _two_nearest(self._cost, reps)
            if not np.array_equal(d1, self._d1[k]):
                raise AssertionError(f"object {k}: stale nearest distances")
            if not np.array_equal(d2, self._d2[k]):
                raise AssertionError(f"object {k}: stale second distances")
            expected = self._column_cost(k, matrix[:, k], self._d1[k])
            if expected != self._obj_cost[k]:
                raise AssertionError(f"object {k}: stale cost term")


# --------------------------------------------------------------------- #
# one-shot deltas (no evaluator state): the thin adapters CostModel's
# add_delta/drop_delta collapse onto
# --------------------------------------------------------------------- #
def single_add_delta(
    model: CostModel, scheme: ReplicationScheme, site: int, obj: int
) -> float:
    """Exact add delta computed from scratch in one O(M*R) pass.

    Same arithmetic as :meth:`IncrementalCostEvaluator.delta_add`, so the
    value is bit-identical whether priced here or through a live
    evaluator.
    """
    reps = scheme.replicators(obj)
    cost = model.instance.cost
    d1 = cost[:, reps].min(axis=1)
    mask = scheme.matrix[:, obj].copy()
    before = _adapter_cost(model, obj, mask, d1)
    c = np.ascontiguousarray(cost[:, site])
    mask[site] = True
    after = _adapter_cost(model, obj, mask, np.minimum(d1, c))
    return after - before


def single_drop_delta(
    model: CostModel, scheme: ReplicationScheme, site: int, obj: int
) -> float:
    """Exact drop delta computed from scratch in one O(M*R) pass."""
    reps = scheme.replicators(obj)
    cost = model.instance.cost
    d1 = cost[:, reps].min(axis=1)
    mask = scheme.matrix[:, obj].copy()
    before = _adapter_cost(model, obj, mask, d1)
    mask[site] = False
    remaining = reps[reps != site]
    after = _adapter_cost(
        model, obj, mask, cost[:, remaining].min(axis=1)
    )
    return after - before


def _adapter_cost(
    model: CostModel, obj: int, mask: np.ndarray, d1: np.ndarray
) -> float:
    """``CostModel._object_cost`` with the nearest distances precomputed.

    Goes through the per-object column accessors, so it prices dense
    and sparse-backed (tiled) models alike: for dense models the
    accessors return the very same column views the original expression
    indexed, and tile columns share their stride class, so the value is
    bit-identical either way.
    """
    read_term = float(model.read_weight_col(obj) @ d1)
    to_primary = model.cost_to_primary_col(obj)
    nonrep = ~mask
    nonrep_writes = float(
        model.write_weight_col(obj)[nonrep] @ to_primary[nonrep]
    )
    rep_writes = float(
        to_primary[mask].sum() * model.total_write_weight_of(obj)
    )
    return read_term + nonrep_writes + rep_writes


class ObjectColumnState:
    """Chained evaluation of one object's replica column (micro-GA).

    AGRA's micro-GA evolves a single object's length-``M`` replica
    column; offspring differ from their parent by a handful of bit
    flips.  This state keeps the column's two-nearest structure so a
    child's exact ``V_k`` is obtained by applying the flip diff —
    O(flips * M) — instead of a from-scratch nearest scan.

    Pricing goes through the model's memo table
    (:meth:`CostModel.cache_lookup` / :meth:`CostModel.cache_store`), so
    the returned values *and* the cache hit/miss accounting are
    identical to pricing every column with
    :meth:`CostModel.object_cost_cached`; the chain only replaces the
    nearest scan that a cache miss would otherwise pay.

    ``value`` is the last evaluated column's exact ``V_k`` (``None``
    until the first :meth:`evaluate`).
    """

    def __init__(
        self, model: CostModel, obj: int, column: np.ndarray
    ) -> None:
        self._model = model
        self._obj = obj
        self._cost = model.instance.cost
        col = np.asarray(column, dtype=bool).copy()
        reps = np.flatnonzero(col)
        if reps.size == 0:
            raise ValidationError(
                f"object {obj} column has no replicators"
            )
        self._column = col
        self._d1, self._n1, self._d2, self._n2 = _two_nearest(
            self._cost, reps
        )
        self.value: Optional[float] = None

    def clone(self) -> "ObjectColumnState":
        new = ObjectColumnState.__new__(ObjectColumnState)
        new._model = self._model
        new._obj = self._obj
        new._cost = self._cost
        new._column = self._column.copy()
        new._d1 = self._d1.copy()
        new._n1 = self._n1.copy()
        new._d2 = self._d2.copy()
        new._n2 = self._n2.copy()
        new.value = self.value
        return new

    def evaluate(self, column: np.ndarray) -> float:
        """Chain the state to ``column`` and return its exact ``V_k``."""
        col = np.asarray(column, dtype=bool)
        added = np.flatnonzero(col & ~self._column)
        dropped = np.flatnonzero(self._column & ~col)
        for site in added:
            self._apply_add(int(site))
        if dropped.size:
            self._column[dropped] = False
            affected = np.flatnonzero(
                np.isin(self._n1, dropped) | np.isin(self._n2, dropped)
            )
            if affected.size:
                reps = np.flatnonzero(self._column)
                d1, n1, d2, n2 = _two_nearest(
                    self._cost, reps, rows=affected
                )
                self._d1[affected] = d1
                self._n1[affected] = n1
                self._d2[affected] = d2
                self._n2[affected] = n2
        # Probe the memo table first — exactly like object_cost_cached
        # does — and fall back to the chained formula only on a miss, so
        # values and cache counters match the uncached path bit for bit.
        model = self._model
        cached = model.cache_lookup(self._obj, self._column)
        if cached is not None:
            self.value = cached
        else:
            self.value = _adapter_cost(
                model, self._obj, self._column, self._d1
            )
            model.cache_store(self._obj, self._column, self.value)
        return self.value

    def _apply_add(self, site: int) -> None:
        self._column[site] = True
        c = np.ascontiguousarray(self._cost[:, site])
        d1, d2 = self._d1, self._d2
        n1, n2 = self._n1, self._n2
        closer = c < d1
        d2[closer] = d1[closer]
        n2[closer] = n1[closer]
        d1[closer] = c[closer]
        n1[closer] = site
        second = ~closer & (c < d2)
        d2[second] = c[second]
        n2[second] = site


__all__ = [
    "ADD",
    "DROP",
    "Move",
    "IncrementalCostEvaluator",
    "ObjectColumnState",
    "eq5_benefit",
    "single_add_delta",
    "single_drop_delta",
]
