"""Fault-tolerance analysis of replication schemes (extension).

The paper sets consistency and fault tolerance aside ("a more spherical
study of replication would include consistency and fault tolerance
issues") — but a replica placement's resilience is exactly what a
practitioner asks next.  This module answers two questions:

* **what does one site failure cost?** — :func:`failure_report` removes
  a site, promotes a surviving replica to primary where the failed site
  hosted one, and re-prices the surviving sites' traffic; objects with
  no surviving replica are *lost*;
* **how do I buy resilience?** — :func:`harden_scheme` greedily adds the
  cheapest (exact-delta) replicas until every object reaches a minimum
  replica degree, reporting the NTC premium paid for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.cost import CostModel
from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import ValidationError


@dataclass(frozen=True)
class FailureReport:
    """Consequences of one site failing under a given scheme."""

    failed_site: int
    lost_objects: Tuple[int, ...]  # no surviving replica anywhere
    promoted_primaries: Dict[int, int]  # object -> new primary site
    surviving_cost: float  # NTC of surviving sites' traffic
    baseline_surviving_cost: float  # same traffic before the failure

    @property
    def cost_increase(self) -> float:
        """Extra NTC the surviving sites pay because of the failure."""
        return self.surviving_cost - self.baseline_surviving_cost

    @property
    def degraded_percent(self) -> float:
        """Cost increase as a percentage of the pre-failure cost."""
        if self.baseline_surviving_cost == 0.0:
            return 0.0
        return 100.0 * self.cost_increase / self.baseline_surviving_cost


def failure_report(
    instance: DRPInstance,
    scheme: ReplicationScheme,
    failed_site: int,
) -> FailureReport:
    """Price a single-site failure.

    The failed site's replicas disappear and its own requests stop (the
    site is down); where it hosted a primary, the surviving replica
    nearest to the old primary is promoted.  Objects with no surviving
    replica are reported lost and excluded from the cost (their traffic
    cannot be served at any price).
    """
    if not 0 <= failed_site < instance.num_sites:
        raise ValidationError(
            f"failed_site {failed_site} out of range "
            f"[0, {instance.num_sites})"
        )
    survivors = np.ones(instance.num_sites, dtype=bool)
    survivors[failed_site] = False

    lost: List[int] = []
    promoted: Dict[int, int] = {}
    surviving_cost = 0.0
    baseline_cost = 0.0
    cost = instance.cost

    for obj in range(instance.num_objects):
        column = scheme.matrix[:, obj]
        primary = int(instance.primaries[obj])
        reads = instance.reads[:, obj]
        writes = instance.writes[:, obj]
        size = float(instance.sizes[obj])

        new_column = column & survivors
        reps_after = np.nonzero(new_column)[0]
        if reps_after.size == 0:
            lost.append(obj)
            continue
        if primary == failed_site:
            # promote the surviving replica nearest the old primary
            new_primary = int(reps_after[np.argmin(cost[primary, reps_after])])
            promoted[obj] = new_primary
        else:
            new_primary = primary

        # price only surviving sites' traffic, before and after
        def priced(
            col: np.ndarray, primary_site: int
        ) -> float:
            reps = np.nonzero(col)[0]
            nearest = cost[:, reps].min(axis=1)
            total = 0.0
            total_writes = float(writes[survivors].sum())
            for i in np.nonzero(survivors)[0]:
                i = int(i)
                if col[i]:
                    total += total_writes * size * float(
                        cost[i, primary_site]
                    )
                else:
                    total += float(reads[i]) * size * float(nearest[i])
                    total += float(writes[i]) * size * float(
                        cost[i, primary_site]
                    )
            return total

        baseline_cost += priced(column, primary)
        surviving_cost += priced(new_column, new_primary)

    return FailureReport(
        failed_site=failed_site,
        lost_objects=tuple(lost),
        promoted_primaries=promoted,
        surviving_cost=surviving_cost,
        baseline_surviving_cost=baseline_cost,
    )


def expected_failure_impact(
    instance: DRPInstance, scheme: ReplicationScheme
) -> Dict[str, float]:
    """Averages over all equally-likely single-site failures."""
    reports = [
        failure_report(instance, scheme, site)
        for site in range(instance.num_sites)
    ]
    return {
        "mean_cost_increase": float(
            np.mean([r.cost_increase for r in reports])
        ),
        "mean_degraded_percent": float(
            np.mean([r.degraded_percent for r in reports])
        ),
        "max_degraded_percent": float(
            np.max([r.degraded_percent for r in reports])
        ),
        "mean_lost_objects": float(
            np.mean([len(r.lost_objects) for r in reports])
        ),
        "worst_lost_objects": float(
            np.max([len(r.lost_objects) for r in reports])
        ),
    }


@dataclass
class HardeningResult:
    """Outcome of :func:`harden_scheme`."""

    scheme: ReplicationScheme
    added_replicas: int
    cost_premium: float  # NTC increase paid for the extra replicas
    unmet_objects: Tuple[int, ...]  # could not reach the target degree


def harden_scheme(
    instance: DRPInstance,
    scheme: ReplicationScheme,
    min_degree: int = 2,
    model: Optional[CostModel] = None,
) -> HardeningResult:
    """Raise every object to ``min_degree`` replicas, cheapest-first.

    For each under-replicated object the site with the least-bad exact
    cost delta (that has room) receives a replica, repeatedly, until the
    degree target is met or no site can host it.  The input scheme is
    not modified.
    """
    if min_degree < 1:
        raise ValidationError(f"min_degree must be >= 1, got {min_degree}")
    model = model or CostModel(instance)
    hardened = scheme.copy()
    before = model.total_cost(hardened)
    added = 0
    unmet: List[int] = []
    for obj in range(instance.num_objects):
        while hardened.replica_degree(obj) < min_degree:
            remaining = hardened.remaining_capacity()
            candidates = [
                site
                for site in range(instance.num_sites)
                if not hardened.holds(site, obj)
                and remaining[site] >= instance.sizes[obj]
            ]
            if not candidates:
                unmet.append(obj)
                break
            deltas = [
                model.add_delta(hardened, site, obj) for site in candidates
            ]
            best = candidates[int(np.argmin(deltas))]
            hardened.add_replica(best, obj)
            added += 1
    return HardeningResult(
        scheme=hardened,
        added_replicas=added,
        cost_premium=model.total_cost(hardened) - before,
        unmet_objects=tuple(unmet),
    )


__all__ = [
    "FailureReport",
    "failure_report",
    "expected_failure_impact",
    "HardeningResult",
    "harden_scheme",
]
