"""Happens-before DAG over an exported trace, and round attribution.

The distributed protocol emulations stamp every message with a
:class:`~repro.distributed.messages.TraceContext` and emit paired
``msg.send`` / ``msg.recv`` point events (see ``distributed/messages``;
the event names are mirrored here as literals because ``obs`` sits
*below* ``distributed`` in the layer map).  This module reconstructs the
causal structure of a run from those records alone:

* :func:`build_dag` — a happens-before DAG whose node identities are
  **structural** (enclosing span path, event name, attributes, and an
  occurrence index) rather than record ids, so the same run yields the
  same DAG whether its trace was recorded serially or merged from
  worker snapshots with remapped ids;
* :meth:`CausalDag.validate` — acyclicity plus the matching-send check
  for every receive;
* :func:`dsra_rounds` / :func:`monitor_rounds` — per-round latency
  attribution for the DSRA token protocol and the monitor commit rounds
  (greedy compute vs simulated retry/backoff vs the messaging
  remainder);
* :func:`causal_sections` — the ``repro trace --causal`` report body.

Happens-before edges, all derivable from structural data:

``msg``
    the k-th ``msg.send`` of a flow key happens before the k-th
    ``msg.recv`` of the same key (message delivery);
``site``
    consecutive events at one site ordered by its Lamport clock
    (local program order; a clock that fails to increase starts a new
    protocol run's chain rather than an edge);
``scope``
    consecutive events under the same enclosing span (the recording
    process's program order — this is what orders fault-injection
    events inside one chaos-replay task).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.utils.tables import format_table
from repro.utils.tracing import read_trace

#: mirrors of the emit-side constants in ``repro.distributed.messages``
SEND_EVENT = "msg.send"
RECV_EVENT = "msg.recv"

#: span names carrying per-round protocol attribution
DSRA_ROUND_SPAN = "dsra.round"
DSRA_GREEDY_SPAN = "dsra.greedy"
DSRA_STATS_SPAN = "dsra.stats"
MONITOR_ROUND_SPAN = "monitor.round"

Record = Dict[str, object]
#: a structural node key: (label, occurrence); label is a nested tuple
NodeKey = Tuple[object, int]


@dataclass
class DagNode:
    """One event in the happens-before DAG."""

    key: NodeKey
    name: str
    attrs: Dict[str, object]
    time: float
    index: int  # position in the node list

    @property
    def site(self) -> Optional[int]:
        """The site this event is local to (dst for receives)."""
        attrs = self.attrs
        if self.name == RECV_EVENT:
            return int(attrs["dst"])  # the receive happens at dst
        if self.name == SEND_EVENT:
            return int(attrs["src"])
        value = attrs.get("site")
        return int(value) if isinstance(value, int) else None


@dataclass
class CausalDag:
    """Happens-before DAG: nodes, labelled edges, validation helpers."""

    nodes: List[DagNode] = field(default_factory=list)
    #: (from_index, to_index, label) with label in {"msg", "site", "scope"}
    edges: List[Tuple[int, int, str]] = field(default_factory=list)
    #: receives whose flow key never saw a send (validation fodder)
    unmatched_receives: List[NodeKey] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    def topological_order(self) -> Optional[List[int]]:
        """Kahn topological order, or ``None`` if the graph has a cycle."""
        n = len(self.nodes)
        indegree = [0] * n
        out: List[List[int]] = [[] for _ in range(n)]
        for src, dst, _label in self.edges:
            out[src].append(dst)
            indegree[dst] += 1
        frontier = [i for i in range(n) if indegree[i] == 0]
        order: List[int] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for nxt in out[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    frontier.append(nxt)
        return order if len(order) == n else None

    def is_acyclic(self) -> bool:
        return self.topological_order() is not None

    def validate(self) -> List[str]:
        """Violation messages; empty means a well-formed causal history."""
        problems: List[str] = []
        if not self.is_acyclic():
            problems.append("happens-before graph contains a cycle")
        for key in self.unmatched_receives:
            problems.append(f"receive without a matching send: {key!r}")
        return problems

    def canonical(self) -> Dict[str, List[str]]:
        """An id-free, order-free serialisation for equality checks.

        Two traces of the same run — serial, or merged from workers with
        remapped span ids — produce equal canonical forms.
        """
        def _key(key: NodeKey) -> str:
            return json.dumps(key, sort_keys=True, default=str)

        nodes = sorted(_key(node.key) for node in self.nodes)
        edges = sorted(
            json.dumps(
                [_key(self.nodes[a].key), _key(self.nodes[b].key), label],
                sort_keys=True,
                default=str,
            )
            for a, b, label in self.edges
        )
        return {"nodes": nodes, "edges": edges}

    # ------------------------------------------------------------------ #
    def critical_path(self) -> List[DagNode]:
        """The longest happens-before chain, preferring message hops.

        Paths are ranked by message-edge count first and elapsed event
        time second, so the result follows the token around the network
        rather than idling inside one site's program order.
        """
        order = self.topological_order()
        if order is None or not self.nodes:
            return []
        # longest-path DP over the reverse topological order
        best: Dict[int, Tuple[int, float, Optional[int]]] = {}
        out: Dict[int, List[Tuple[int, str]]] = {}
        for src, dst, label in self.edges:
            out.setdefault(src, []).append((dst, label))
        for node in reversed(order):
            best[node] = (0, 0.0, None)
            for nxt, label in out.get(node, ()):
                hops, elapsed, _ = best[nxt]
                hops = hops + (1 if label == "msg" else 0)
                elapsed = elapsed + max(
                    0.0, self.nodes[nxt].time - self.nodes[node].time
                )
                if (hops, elapsed) > best[node][:2]:
                    best[node] = (hops, elapsed, nxt)
        start = max(best, key=lambda i: best[i][:2])
        path = [start]
        while best[path[-1]][2] is not None:
            path.append(best[path[-1]][2])
        return [self.nodes[i] for i in path]


# --------------------------------------------------------------------- #
# building
# --------------------------------------------------------------------- #
def _records_of(data: Union[str, Dict[str, object], Sequence[Record]]):
    """Accept a trace path, a ``read_trace`` dict, or a record list."""
    if isinstance(data, str):
        data = read_trace(data)
    if isinstance(data, dict):
        return list(data.get("records") or [])
    return list(data)


def _span_paths(records: Iterable[Record]) -> Dict[int, Tuple]:
    """Structural path of every span id: ((name, occurrence), ...).

    The occurrence index counts same-named siblings under one parent in
    record order — the order the spans closed, which the parallel
    harness preserves by merging worker snapshots in task order.  Span
    ids themselves never enter the path, so remapping cannot change it.
    """
    spans = [r for r in records if r.get("type") == "span"]
    by_id = {r["id"]: r for r in spans if isinstance(r.get("id"), int)}
    children: Dict[Optional[int], List[Record]] = {}
    for record in spans:
        parent = record.get("parent")
        if not isinstance(parent, int) or parent not in by_id:
            parent = None  # root, or parent truncated out of the buffer
        children.setdefault(parent, []).append(record)

    paths: Dict[int, Tuple] = {}

    def _assign(parent: Optional[int], prefix: Tuple) -> None:
        seen: Dict[str, int] = {}
        for record in children.get(parent, ()):  # record (= close) order
            name = str(record.get("name", ""))
            occurrence = seen.get(name, 0)
            seen[name] = occurrence + 1
            path = prefix + ((name, occurrence),)
            span_id = record.get("id")
            if isinstance(span_id, int):
                paths[span_id] = path
                _assign(span_id, path)

    _assign(None, ())
    return paths


def build_dag(
    data: Union[str, Dict[str, object], Sequence[Record]],
) -> CausalDag:
    """Build the happens-before DAG from a trace (path, dict or records)."""
    records = _records_of(data)
    span_paths = _span_paths(records)
    dag = CausalDag()

    label_counts: Dict[object, int] = {}
    last_in_scope: Dict[Tuple, int] = {}
    last_at_site: Dict[int, Tuple[int, int]] = {}  # site -> (index, clock)
    pending_sends: Dict[Tuple[Tuple, object], List[int]] = {}
    matched: Dict[Tuple[Tuple, object], int] = {}

    for record in records:
        if record.get("type") != "event":
            continue
        name = str(record.get("name", ""))
        attrs = dict(record.get("attrs") or {})
        parent = record.get("parent")
        scope = span_paths.get(parent, ()) if isinstance(parent, int) else ()
        label = (
            scope,
            name,
            json.dumps(attrs, sort_keys=True, default=str),
        )
        occurrence = label_counts.get(label, 0)
        label_counts[label] = occurrence + 1
        node = DagNode(
            key=(label, occurrence),
            name=name,
            attrs=attrs,
            time=float(record.get("time", 0.0)),
            index=len(dag.nodes),
        )
        dag.nodes.append(node)

        # scope program order: consecutive events under one span
        prev = last_in_scope.get(scope)
        if prev is not None:
            dag.edges.append((prev, node.index, "scope"))
        last_in_scope[scope] = node.index

        if name not in (SEND_EVENT, RECV_EVENT):
            continue

        # site program order, gated on the Lamport clock: a clock that
        # fails to increase means a fresh MessageLog (a new protocol
        # run), which starts a new chain instead of an edge
        site = node.site
        clock = int(attrs.get("clock", 0))
        if site is not None:
            prev_entry = last_at_site.get(site)
            if prev_entry is not None and clock > prev_entry[1]:
                dag.edges.append((prev_entry[0], node.index, "site"))
            last_at_site[site] = (node.index, clock)

        # message delivery: k-th send of a flow key -> k-th recv
        flow = (scope, attrs.get("flow"))
        if name == SEND_EVENT:
            pending_sends.setdefault(flow, []).append(node.index)
        else:
            queue = pending_sends.get(flow)
            count = matched.get(flow, 0)
            if queue and count < len(queue):
                dag.edges.append((queue[count], node.index, "msg"))
                matched[flow] = count + 1
            else:
                dag.unmatched_receives.append(node.key)
    return dag


# --------------------------------------------------------------------- #
# per-round latency attribution
# --------------------------------------------------------------------- #
def _span_records(records: Sequence[Record], name: str) -> List[Record]:
    return [
        r
        for r in records
        if r.get("type") == "span" and r.get("name") == name
    ]


def _duration(record: Record) -> float:
    return float(record.get("end", 0.0)) - float(record.get("start", 0.0))


def dsra_rounds(
    data: Union[str, Dict[str, object], Sequence[Record]],
) -> List[Dict[str, object]]:
    """Per-round latency attribution for the DSRA token protocol.

    For every ``dsra.round`` span: wall seconds split into greedy
    compute (the ``dsra.greedy`` child), simulated retry/backoff seconds
    (hardened mode's attributes), and the messaging / bookkeeping
    remainder; plus the message count emitted inside the round.
    """
    records = _records_of(data)
    rounds = _span_records(records, DSRA_ROUND_SPAN)
    greedy_by_parent: Dict[int, float] = {}
    for record in _span_records(records, DSRA_GREEDY_SPAN):
        parent = record.get("parent")
        if isinstance(parent, int):
            greedy_by_parent[parent] = (
                greedy_by_parent.get(parent, 0.0) + _duration(record)
            )
    sends_by_parent: Dict[int, int] = {}
    for record in records:
        if record.get("type") == "event" and record.get("name") in (
            SEND_EVENT,
            RECV_EVENT,
        ):
            parent = record.get("parent")
            if isinstance(parent, int):
                sends_by_parent[parent] = sends_by_parent.get(parent, 0) + 1
    out: List[Dict[str, object]] = []
    for record in sorted(rounds, key=lambda r: float(r.get("start", 0.0))):
        attrs = dict(record.get("attrs") or {})
        span_id = record.get("id")
        wall = _duration(record)
        compute = greedy_by_parent.get(span_id, 0.0)
        out.append(
            {
                "round": attrs.get("round"),
                "site": attrs.get("site"),
                "wall_seconds": wall,
                "compute_seconds": compute,
                "messaging_seconds": max(0.0, wall - compute),
                "backoff_sim_seconds": float(attrs.get("backoff", 0.0)),
                "retries": int(attrs.get("retries", 0)),
                "messages": sends_by_parent.get(span_id, 0),
            }
        )
    return out


def monitor_rounds(
    data: Union[str, Dict[str, object], Sequence[Record]],
) -> List[Dict[str, object]]:
    """Per-collection attribution for the monitor commit rounds."""
    records = _records_of(data)
    out: List[Dict[str, object]] = []
    for record in sorted(
        _span_records(records, MONITOR_ROUND_SPAN),
        key=lambda r: float(r.get("start", 0.0)),
    ):
        attrs = dict(record.get("attrs") or {})
        out.append(
            {
                "round": attrs.get("round"),
                "mode": attrs.get("mode"),
                "wall_seconds": _duration(record),
                "messages": int(attrs.get("messages", 0)),
                "retransmissions": int(attrs.get("retransmissions", 0)),
                "missing": int(attrs.get("missing", 0)),
            }
        )
    return out


def message_flow(
    data: Union[str, Dict[str, object], Sequence[Record]],
) -> Dict[str, object]:
    """Aggregate message-flow statistics from the ``msg.send`` events."""
    records = _records_of(data)
    total = 0
    lost = 0
    by_kind: Dict[str, int] = {}
    by_pair: Dict[Tuple[int, int], int] = {}
    for record in records:
        if record.get("type") != "event" or record.get("name") != SEND_EVENT:
            continue
        attrs = dict(record.get("attrs") or {})
        total += 1
        if attrs.get("lost"):
            lost += 1
        kind = str(attrs.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
        pair = (int(attrs.get("src", -1)), int(attrs.get("dst", -1)))
        by_pair[pair] = by_pair.get(pair, 0) + 1
    return {
        "total": total,
        "lost": lost,
        "by_kind": by_kind,
        "by_pair": by_pair,
    }


# --------------------------------------------------------------------- #
# the `repro trace --causal` report body
# --------------------------------------------------------------------- #
def causal_sections(
    data: Union[str, Dict[str, object], Sequence[Record]],
    top_pairs: int = 8,
) -> str:
    """Critical-path and message-flow sections for ``repro trace``."""
    records = _records_of(data)
    dag = build_dag(records)
    problems = dag.validate()
    lines: List[str] = []
    lines.append(
        f"causality: {len(dag.nodes)} events, {len(dag.edges)} "
        f"happens-before edges, "
        f"{'acyclic' if dag.is_acyclic() else 'CYCLIC'}, "
        f"{len(dag.unmatched_receives)} unmatched receives"
    )
    for problem in problems:
        lines.append(f"  VIOLATION: {problem}")

    flow = message_flow(records)
    if flow["total"]:
        lines.append("")
        rows = [
            [kind, count]
            for kind, count in sorted(flow["by_kind"].items())
        ]
        lines.append(
            format_table(
                ["kind", "sends"],
                rows,
                title=(
                    f"message flow: {flow['total']} sends, "
                    f"{flow['lost']} lost in flight"
                ),
            )
        )
        pair_rows = sorted(
            flow["by_pair"].items(), key=lambda kv: (-kv[1], kv[0])
        )[:top_pairs]
        if pair_rows:
            lines.append("")
            lines.append(
                format_table(
                    ["src -> dst", "messages"],
                    [
                        [f"{src} -> {dst}", count]
                        for (src, dst), count in pair_rows
                    ],
                    title=f"busiest links (top {len(pair_rows)})",
                )
            )

    rounds = dsra_rounds(records)
    if rounds:
        lines.append("")
        lines.append(
            format_table(
                [
                    "round", "site", "wall (s)", "greedy (s)",
                    "messaging (s)", "backoff (sim s)", "retries", "msgs",
                ],
                [
                    [
                        row["round"], row["site"], row["wall_seconds"],
                        row["compute_seconds"], row["messaging_seconds"],
                        row["backoff_sim_seconds"], row["retries"],
                        row["messages"],
                    ]
                    for row in rounds
                ],
                precision=6,
                title="DSRA token rounds (critical-path attribution)",
            )
        )

    monitors = monitor_rounds(records)
    if monitors:
        lines.append("")
        lines.append(
            format_table(
                ["round", "mode", "wall (s)", "msgs", "retx", "missing"],
                [
                    [
                        row["round"], row["mode"], row["wall_seconds"],
                        row["messages"], row["retransmissions"],
                        row["missing"],
                    ]
                    for row in monitors
                ],
                precision=6,
                title="monitor commit rounds",
            )
        )

    path = dag.critical_path()
    hops = [n for n in path if n.name in (SEND_EVENT, RECV_EVENT)]
    if hops:
        lines.append("")
        elapsed = path[-1].time - path[0].time if len(path) > 1 else 0.0
        chain = " -> ".join(
            f"{n.attrs.get('kind', n.name)}@{n.site}"
            for n in hops[:12]
        )
        suffix = " ..." if len(hops) > 12 else ""
        lines.append(
            f"critical path: {len(path)} events, "
            f"{sum(1 for a, b, lab in dag.edges if lab == 'msg')} message "
            f"edges total, longest chain spans {elapsed * 1e3:.3f} ms:"
        )
        lines.append(f"  {chain}{suffix}")
    if flow["total"] == 0 and not rounds and not monitors:
        lines.append(
            "  (no message events — run a distributed protocol with "
            "--trace to populate this section)"
        )
    return "\n".join(lines)


__all__ = [
    "SEND_EVENT",
    "RECV_EVENT",
    "DSRA_ROUND_SPAN",
    "DSRA_GREEDY_SPAN",
    "DSRA_STATS_SPAN",
    "MONITOR_ROUND_SPAN",
    "DagNode",
    "CausalDag",
    "build_dag",
    "dsra_rounds",
    "monitor_rounds",
    "message_flow",
    "causal_sections",
]
