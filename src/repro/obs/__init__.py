"""Causal observability: happens-before DAGs and the placement ledger.

``repro.obs`` sits directly above :mod:`repro.utils` in the layer map —
it may import utils (and nothing higher), while the algorithm, sim and
distributed layers may import it.  Two members:

* :mod:`repro.obs.causal` — builds a happens-before DAG over an exported
  trace (message send/receive events, Lamport clocks, program order) and
  extracts per-round critical-path / latency attribution for the
  distributed protocols;
* :mod:`repro.obs.ledger` — the append-only :class:`PlacementLedger`
  recording every replica add / drop / deferral with full attribution,
  plus the ``repro explain`` decision-chain renderer.

See ``docs/causality.md``.
"""

from repro.obs.causal import (
    CausalDag,
    build_dag,
    causal_sections,
    dsra_rounds,
    message_flow,
    monitor_rounds,
)
from repro.obs.ledger import (
    PlacementLedger,
    current_ledger,
    disable_global_ledger,
    enable_global_ledger,
    explain_entries,
    global_ledger,
    read_ledger,
    render_explanation,
    temporary_ledger,
)

__all__ = [
    "CausalDag",
    "build_dag",
    "causal_sections",
    "dsra_rounds",
    "message_flow",
    "monitor_rounds",
    "PlacementLedger",
    "current_ledger",
    "disable_global_ledger",
    "enable_global_ledger",
    "explain_entries",
    "global_ledger",
    "read_ledger",
    "render_explanation",
    "temporary_ledger",
]
