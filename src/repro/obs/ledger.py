"""Append-only replica placement ledger with full attribution.

Every replica **add**, **drop**, **defer** and **resume** that touches a
deployed :class:`~repro.core.scheme.ReplicationScheme` — plus advisory
**decide** and **fault** entries that explain *why* — is recorded as one
immutable dict entry.  Producers (the SRA solver, the AGRA engine, the
adaptive loop, both distributed protocols, the fault injector) attach
attribution by nesting :meth:`PlacementLedger.scope` blocks::

    with ledger.scope(algorithm="agra", epoch=3, trigger="pattern-change"):
        ledger.record("add", obj=7, site=2, benefit=41.5)

Entry schema (all producers)::

    seq        monotonically increasing per-ledger sequence number
    action     add | drop | defer | resume | decide | fault
    obj        object index (absent for object-less fault entries)
    site       site index (absent for site-less decide entries)
    causal_parent   tracer span id open at record time (tracing on only)
    ...        scope attribution (outer scopes first) and call-site detail
               (algorithm, epoch, benefit / Eq. 6 estimate, trigger,
               fault window, reason, source site, ...)

Only ``add`` and ``drop`` mutate the deployed scheme; replaying exactly
those two actions from an empty (primary-only) scheme must reproduce the
final scheme bit for bit — the ``ledger-scheme-consistency`` conformance
invariant enforces this on every corpus scenario.

A process-wide ledger mirrors the tracer's singleton discipline: it is
installed and torn down only by :class:`repro.runtime.context.RunContext`
(the CLI ``--ledger`` flag), and instrumented call sites fetch it with
:func:`current_ledger`, which returns a shared *disabled* ledger when
the feature is off so the hot paths pay one attribute check and nothing
else.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, IO, Iterator, List, Optional, Tuple

from repro.errors import ValidationError
from repro.utils.tracing import current_tracer

#: entry actions that mutate the deployed scheme (replayable)
ACTION_ADD = "add"
ACTION_DROP = "drop"
#: advisory actions (attribution / audit only, skipped by replay)
ACTION_DEFER = "defer"
ACTION_RESUME = "resume"
ACTION_DECIDE = "decide"
ACTION_FAULT = "fault"

ACTIONS = (
    ACTION_ADD,
    ACTION_DROP,
    ACTION_DEFER,
    ACTION_RESUME,
    ACTION_DECIDE,
    ACTION_FAULT,
)
REPLAYABLE_ACTIONS = (ACTION_ADD, ACTION_DROP)

#: one ledger entry: plain dict, JSON- and pickle-friendly
Entry = Dict[str, object]


class PlacementLedger:
    """Append-only record of every replica placement decision.

    >>> ledger = PlacementLedger()
    >>> with ledger.scope(algorithm="sra"):
    ...     _ = ledger.record("add", obj=3, site=1, benefit=12.5)
    >>> ledger.entries()[0]["algorithm"]
    'sra'
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._entries: List[Entry] = []
        self._scopes: List[Dict[str, object]] = []
        self._seq = 0

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    @contextmanager
    def scope(self, **attribution: object) -> Iterator["PlacementLedger"]:
        """Attach ``attribution`` to every entry recorded in the block.

        Scopes nest; inner keys shadow outer ones.  A disabled ledger's
        scope is a no-op.
        """
        if not self.enabled:
            yield self
            return
        self._scopes.append(attribution)
        try:
            yield self
        finally:
            self._scopes.pop()

    def record(
        self,
        action: str,
        obj: Optional[int] = None,
        site: Optional[int] = None,
        **detail: object,
    ) -> Optional[Entry]:
        """Append one entry; returns it (``None`` when disabled)."""
        if not self.enabled:
            return None
        if action not in ACTIONS:
            raise ValidationError(
                f"ledger action must be one of {ACTIONS}, got {action!r}"
            )
        entry: Entry = {"seq": self._seq, "action": action}
        self._seq += 1
        if obj is not None:
            entry["obj"] = int(obj)
        if site is not None:
            entry["site"] = int(site)
        tracer = current_tracer()
        if tracer.enabled and tracer.current_span_id is not None:
            entry["causal_parent"] = tracer.current_span_id
        for scope in self._scopes:
            entry.update(scope)
        entry.update(detail)
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def entries(
        self,
        obj: Optional[int] = None,
        site: Optional[int] = None,
        action: Optional[str] = None,
    ) -> List[Entry]:
        """A filtered copy of the entries, oldest first."""
        return [
            dict(e)
            for e in self._entries
            if (obj is None or e.get("obj") == obj)
            and (site is None or e.get("site") == site)
            and (action is None or e.get("action") == action)
        ]

    def replay_ops(self) -> Iterator[Tuple[str, int, int]]:
        """The scheme-mutating stream: ``(action, site, obj)`` tuples."""
        for entry in self._entries:
            if entry["action"] in REPLAYABLE_ACTIONS:
                yield (
                    str(entry["action"]),
                    int(entry["site"]),
                    int(entry["obj"]),
                )

    def __len__(self) -> int:
        return len(self._entries)

    def reset(self) -> None:
        self._entries.clear()
        self._scopes.clear()
        self._seq = 0

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def write_jsonl(self, fp: IO[str]) -> None:
        """One JSON entry per line, in sequence order."""
        for entry in self._entries:
            fp.write(json.dumps(entry, default=str) + "\n")

    def write(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fp:
            self.write_jsonl(fp)
        return path


def read_ledger(path: str) -> List[Entry]:
    """Load a JSONL ledger written by :meth:`PlacementLedger.write`."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            content = fp.read()
    except FileNotFoundError:
        raise ValidationError(f"no such file: {path}") from None
    entries: List[Entry] = []
    for line in content.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"{path} is not a valid ledger file: {exc}"
            ) from None
    return entries


# --------------------------------------------------------------------- #
# the decision chain (`repro explain`)
# --------------------------------------------------------------------- #
def explain_entries(
    entries: List[Entry],
    obj: int,
    site: Optional[int] = None,
    at: Optional[float] = None,
) -> List[Entry]:
    """The decision chain for one object (optionally one site).

    Returns every entry touching ``obj`` — plus object-less ``fault``
    entries at sites in the chain, which are the fault windows that
    triggered deferrals — in sequence order.  ``at`` cuts the chain at a
    logical time: entries whose ``epoch`` / ``time`` attribution exceeds
    it are dropped.
    """
    chain = [
        e
        for e in entries
        if e.get("obj") == obj and (site is None or e.get("site") == site)
    ]
    sites_in_chain = {e.get("site") for e in chain if e.get("site") is not None}
    faults = [
        e
        for e in entries
        if e.get("action") == ACTION_FAULT
        and e.get("obj") is None
        and e.get("site") in sites_in_chain
    ]
    merged = sorted(chain + faults, key=lambda e: e.get("seq", 0))
    if at is not None:
        def _when(entry: Entry) -> Optional[float]:
            for key in ("epoch", "time"):
                value = entry.get(key)
                if isinstance(value, (int, float)):
                    return float(value)
            return None

        merged = [e for e in merged if (_when(e) is None or _when(e) <= at)]
    return merged


#: attribution keys rendered on their own column, in display order
_LEAD_KEYS = ("seq", "action", "obj", "site")


def render_explanation(
    entries: List[Entry],
    obj: int,
    site: Optional[int] = None,
    at: Optional[float] = None,
) -> str:
    """Human-readable decision chain for ``repro explain``."""
    chain = explain_entries(entries, obj, site=site, at=at)
    where = f"object {obj}" + (f" at site {site}" if site is not None else "")
    when = f" up to t={at:g}" if at is not None else ""
    lines = [f"decision chain for {where}{when}: {len(chain)} entries"]
    if not chain:
        lines.append(
            "  (no ledger entries — was the run recorded with --ledger?)"
        )
        return "\n".join(lines)
    for entry in chain:
        detail = ", ".join(
            f"{key}={value}"
            for key, value in entry.items()
            if key not in _LEAD_KEYS
        )
        head = (
            f"  #{entry.get('seq', '?'):>4} {str(entry['action']):<7}"
            f" obj={entry.get('obj', '-')!s:<4} site={entry.get('site', '-')!s:<4}"
        )
        lines.append(head + (f" {detail}" if detail else ""))
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# optional process-wide ledger (CLI --ledger)
# --------------------------------------------------------------------- #
_GLOBAL: Optional[PlacementLedger] = None
_DISABLED = PlacementLedger(enabled=False)


def enable_global_ledger() -> PlacementLedger:
    """Install (or return the existing) process-wide ledger."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = PlacementLedger()
    return _GLOBAL


def global_ledger() -> Optional[PlacementLedger]:
    """The process-wide ledger, or ``None`` when the feature is off."""
    return _GLOBAL


def disable_global_ledger() -> None:
    """Remove the process-wide ledger."""
    global _GLOBAL
    _GLOBAL = None


def current_ledger() -> PlacementLedger:
    """The global ledger, or a shared disabled ledger when off.

    Producers use this so the disabled path costs one global load plus
    one ``enabled`` check — no allocation, no branches in the caller.
    """
    return _GLOBAL if _GLOBAL is not None else _DISABLED


@contextmanager
def temporary_ledger() -> Iterator[PlacementLedger]:
    """Install a fresh process-wide ledger for the duration of a block.

    Whatever ledger was installed before (including none) is restored on
    exit, even when the body raises.  The conformance invariant uses this
    (via :func:`repro.runtime.context.scoped_ledger`) to capture a
    solve's placement stream without clobbering a ``--ledger`` session.
    """
    global _GLOBAL
    previous = _GLOBAL
    ledger = PlacementLedger()
    _GLOBAL = ledger
    try:
        yield ledger
    finally:
        _GLOBAL = previous


__all__ = [
    "ACTION_ADD",
    "ACTION_DROP",
    "ACTION_DEFER",
    "ACTION_RESUME",
    "ACTION_DECIDE",
    "ACTION_FAULT",
    "ACTIONS",
    "REPLAYABLE_ACTIONS",
    "Entry",
    "PlacementLedger",
    "read_ledger",
    "explain_entries",
    "render_explanation",
    "enable_global_ledger",
    "global_ledger",
    "disable_global_ledger",
    "current_ledger",
    "temporary_ledger",
]
