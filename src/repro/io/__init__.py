"""Persistence: save and load instances, schemes and figure results."""

from repro.io.persistence import (
    load_figure_result,
    load_instance,
    load_scheme,
    save_figure_result,
    save_instance,
    save_scheme,
)

__all__ = [
    "save_instance",
    "load_instance",
    "save_scheme",
    "load_scheme",
    "save_figure_result",
    "load_figure_result",
]
