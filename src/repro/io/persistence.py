"""JSON persistence of the library's core objects.

Files are versioned self-describing JSON documents: a ``kind`` tag plus
a ``version`` integer, so future format evolution stays loadable.  All
functions accept a path (``str`` or ``pathlib.Path``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import ValidationError
from repro.experiments.figures import FigureResult

PathLike = Union[str, Path]

FORMAT_VERSION = 1

_KIND_INSTANCE = "repro/drp-instance"
_KIND_SCHEME = "repro/replication-scheme"
_KIND_FIGURE = "repro/figure-result"


def _write(path: PathLike, document: dict) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def _read(path: PathLike, expected_kind: str) -> dict:
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            document = json.load(handle)
    except FileNotFoundError:
        raise ValidationError(f"no such file: {path}") from None
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from None
    if not isinstance(document, dict):
        raise ValidationError(f"{path} does not contain a JSON object")
    kind = document.get("kind")
    if kind != expected_kind:
        raise ValidationError(
            f"{path} contains {kind!r}, expected {expected_kind!r}"
        )
    version = document.get("version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"{path} has format version {version!r}; this build reads "
            f"version {FORMAT_VERSION}"
        )
    return document


# --------------------------------------------------------------------- #
# instances
# --------------------------------------------------------------------- #
def save_instance(instance: DRPInstance, path: PathLike) -> Path:
    """Write a DRP instance to ``path`` as JSON."""
    return _write(
        path,
        {
            "kind": _KIND_INSTANCE,
            "version": FORMAT_VERSION,
            "data": instance.to_dict(),
        },
    )


def load_instance(path: PathLike) -> DRPInstance:
    """Read a DRP instance written by :func:`save_instance`."""
    document = _read(path, _KIND_INSTANCE)
    return DRPInstance.from_dict(document["data"])


# --------------------------------------------------------------------- #
# schemes
# --------------------------------------------------------------------- #
def save_scheme(scheme: ReplicationScheme, path: PathLike) -> Path:
    """Write a replication scheme (with its instance) to ``path``."""
    return _write(
        path,
        {
            "kind": _KIND_SCHEME,
            "version": FORMAT_VERSION,
            "instance": scheme.instance.to_dict(),
            "scheme": scheme.to_dict(),
        },
    )


def load_scheme(path: PathLike) -> ReplicationScheme:
    """Read a scheme written by :func:`save_scheme` (instance included)."""
    document = _read(path, _KIND_SCHEME)
    instance = DRPInstance.from_dict(document["instance"])
    return ReplicationScheme.from_dict(instance, document["scheme"])


# --------------------------------------------------------------------- #
# figure results
# --------------------------------------------------------------------- #
def save_figure_result(result: FigureResult, path: PathLike) -> Path:
    """Write a reproduced figure's data series to ``path``."""
    return _write(
        path,
        {
            "kind": _KIND_FIGURE,
            "version": FORMAT_VERSION,
            "data": result.to_dict(),
        },
    )


def load_figure_result(path: PathLike) -> FigureResult:
    """Read a figure written by :func:`save_figure_result`."""
    document = _read(path, _KIND_FIGURE)
    data = document["data"]
    return FigureResult(
        figure_id=data["figure_id"],
        title=data["title"],
        x_label=data["x_label"],
        y_label=data["y_label"],
        x_values=list(data["x_values"]),
        series={k: list(v) for k, v in data["series"].items()},
        meta=dict(data.get("meta", {})),
    )


__all__ = [
    "FORMAT_VERSION",
    "save_instance",
    "load_instance",
    "save_scheme",
    "load_scheme",
    "save_figure_result",
    "load_figure_result",
]
