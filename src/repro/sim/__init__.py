"""Discrete-event simulation of the replicated distributed system.

The analytic cost model (Section 2.2) predicts NTC from aggregate counts;
this package *measures* it by replaying individual read/write requests
against a replication scheme over the simulated network:

* reads are served by the requester's nearest replicator;
* writes ship the object to its primary, which broadcasts the update to
  every other replicator (the paper's replication policy, Section 2.1).

Integration tests assert that the measured NTC equals the analytic
``D(X)`` exactly — each implementation validates the other.  The
simulator additionally reports response times (the user-facing motivation
of the paper's introduction) and powers the adaptive monitor loop of
Section 5 (:mod:`repro.sim.adaptive`).
"""

from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.engine import Simulator
from repro.sim.faults import (
    CrashWindow,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    MessageFaultSpec,
    PartitionWindow,
    load_fault_plan,
)
from repro.sim.metrics import SimulationMetrics
from repro.sim.protocol import ReplicaSystem
from repro.sim.adaptive import AdaptiveLoopReport, AdaptiveReplicationLoop
from repro.sim.loadmodel import LoadReport, estimate_load, served_units

__all__ = [
    "LoadReport",
    "estimate_load",
    "served_units",
    "EventQueue",
    "ScheduledEvent",
    "Simulator",
    "SimulationMetrics",
    "ReplicaSystem",
    "AdaptiveLoopReport",
    "AdaptiveReplicationLoop",
    "CrashWindow",
    "FaultInjector",
    "FaultPlan",
    "LinkDegradation",
    "MessageFaultSpec",
    "PartitionWindow",
    "load_fault_plan",
]
