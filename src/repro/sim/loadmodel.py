"""Server-load and response-time estimation (M/M/1 capacity planning).

NTC measures *bytes x distance*; users feel *time*.  Beyond the linear
latency of :class:`~repro.sim.metrics.SimulationMetrics`, this module
estimates queueing delay at the sites themselves: each site is an M/M/1
server draining the data units it must serve per unit time (reads fetched
from it, write shipments it emits, broadcasts its primaries fan out).

Given a statistics window of ``duration`` seconds and a per-site service
rate (units/second), it reports utilisation, the bottleneck site, and a
mean response-time estimate combining network transfer latency and the
M/M/1 sojourn time ``1 / (mu - lambda)``.  Sites at or beyond capacity
make the system infeasible (response times diverge) — the capacity
question the paper's storage constraint does not ask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import ValidationError


@dataclass(frozen=True)
class LoadReport:
    """Utilisation and response estimate of one scheme under load."""

    served_units: np.ndarray  # per-site data units served in the window
    utilization: np.ndarray  # per-site rho = lambda / mu
    bottleneck_site: int
    feasible: bool  # every site's rho < 1
    mean_read_response: float  # seconds; inf when infeasible
    mean_queueing_delay: float  # seconds; inf when infeasible

    @property
    def peak_utilization(self) -> float:
        return float(self.utilization[self.bottleneck_site])


def served_units(
    instance: DRPInstance,
    scheme: ReplicationScheme,
    update_fraction: float = 1.0,
) -> np.ndarray:
    """Data units each site must *serve* over the statistics window.

    * a read by a non-holder is served by its nearest replicator;
    * a write shipment is served by the writer (it uploads the object);
    * update broadcasts are served by the primary (one copy per other
      replicator per write).

    Local reads are free (no transfer), matching the cost model.
    """
    m = instance.num_sites
    load = np.zeros(m)
    for obj in range(instance.num_objects):
        size = float(instance.sizes[obj])
        wsize = update_fraction * size
        primary = int(instance.primaries[obj])
        nearest = scheme.nearest_sites(obj)
        holders = scheme.matrix[:, obj]
        degree = int(holders.sum())
        total_writes = float(instance.writes[:, obj].sum())
        for site in range(m):
            reads = float(instance.reads[site, obj])
            if reads and not holders[site]:
                load[int(nearest[site])] += reads * size
            writes = float(instance.writes[site, obj])
            if writes and site != primary:
                load[site] += writes * wsize
        # the primary fans each write out to every other replicator
        # (minus the leg back to a writing replicator, which the writer
        # covered by shipping the fresh copy -- accounted above)
        if degree > 1 and total_writes:
            fanout = degree - 1
            load[primary] += total_writes * wsize * fanout
            # subtract the self-legs: a writing replicator is not re-sent
            writers_holding = float(
                instance.writes[holders & (np.arange(m) != primary), obj].sum()
            )
            load[primary] -= writers_holding * wsize
    return load


def estimate_load(
    instance: DRPInstance,
    scheme: ReplicationScheme,
    duration: float,
    service_rate: Union[float, np.ndarray],
    unit_latency: float = 0.0,
    update_fraction: float = 1.0,
) -> LoadReport:
    """M/M/1 utilisation and response-time estimate.

    Parameters
    ----------
    duration:
        Length in seconds of the window the instance's counts cover.
    service_rate:
        Units/second each site can serve (scalar or per-site array).
    unit_latency:
        Seconds per cost-weighted data unit in flight (network part of
        the response time); 0 isolates the queueing component.
    """
    if duration <= 0:
        raise ValidationError(f"duration must be > 0, got {duration}")
    rates = np.broadcast_to(
        np.asarray(service_rate, dtype=float), (instance.num_sites,)
    ).copy()
    if np.any(rates <= 0):
        raise ValidationError("service_rate must be positive")

    units = served_units(instance, scheme, update_fraction)
    arrival_rates = units / duration
    utilization = arrival_rates / rates
    bottleneck = int(np.argmax(utilization))
    feasible = bool(np.all(utilization < 1.0))

    # mean sojourn time at each site: 1 / (mu - lambda) (M/M/1, per unit)
    if feasible:
        sojourn = 1.0 / (rates - arrival_rates)
    else:
        sojourn = np.where(
            utilization < 1.0, 1.0 / (rates - arrival_rates), np.inf
        )

    # aggregate read response: per non-local read, network latency plus
    # the serving site's queueing delay weighted by the transfer size
    total_reads = 0.0
    total_response = 0.0
    total_delay = 0.0
    for obj in range(instance.num_objects):
        size = float(instance.sizes[obj])
        nearest = scheme.nearest_sites(obj)
        holders = scheme.matrix[:, obj]
        for site in range(instance.num_sites):
            reads = float(instance.reads[site, obj])
            if reads == 0.0:
                continue
            total_reads += reads
            if holders[site]:
                continue  # local read: zero transfer and queueing
            server = int(nearest[site])
            network = (
                unit_latency * size * float(instance.cost[site, server])
            )
            queueing = float(sojourn[server]) * size
            total_response += reads * (network + queueing)
            total_delay += reads * queueing
    mean_response = total_response / total_reads if total_reads else 0.0
    mean_delay = total_delay / total_reads if total_reads else 0.0

    return LoadReport(
        served_units=units,
        utilization=utilization,
        bottleneck_site=bottleneck,
        feasible=feasible,
        mean_read_response=float(mean_response),
        mean_queueing_delay=float(mean_delay),
    )


__all__ = ["LoadReport", "served_units", "estimate_load"]
