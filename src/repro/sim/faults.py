"""Deterministic fault injection for the simulator and the protocols.

The paper's Section 5 premise is that replication must stay useful while
the system is *live*; the emulation therefore needs failure models richer
than an instant, binary ``fail_site``.  This module provides them as
**data**: a :class:`FaultPlan` is a declarative, JSON-serialisable
schedule of

* **site crash windows** — a site goes down at ``start`` and (optionally)
  recovers at ``end``;
* **link degradations** — the per-unit transfer cost of a link is
  multiplied by ``factor`` for the duration of a window;
* **partitions** — a group of sites is cut off from the rest (links
  across the cut deliver nothing);
* **message faults** — per-message loss / duplication probabilities and
  a mean extra delay, applied by the distributed protocol emulations.

A :class:`FaultInjector` binds a plan to a live
:class:`~repro.sim.protocol.ReplicaSystem`: transitions apply in
deterministic order (time, then end-before-start, then declaration
order), either pulled by :meth:`FaultInjector.advance_to` during a trace
replay or pushed as events onto a
:class:`~repro.sim.engine.Simulator` via :meth:`FaultInjector.install`.
Every transition is emitted through the current
:class:`~repro.utils.tracing.Tracer` and counted in
:class:`~repro.sim.metrics.SimulationMetrics.fault_events`.

Determinism guarantees (relied on by the chaos test-suite):

* the same plan + the same seed produce the same message-fault decisions
  in the same order (:class:`MessageFaults` draws from a private
  ``numpy`` generator seeded with ``plan.seed``);
* an **empty** plan is a zero-fault, zero-side-effect path — replaying a
  trace through an injector with an empty plan is behaviour-identical to
  replaying with no injector at all.

Time units are context-dependent: trace replay and the discrete-event
simulator interpret transition times as *simulated seconds*; the
round-based distributed protocols interpret them as *round numbers*; the
adaptive loop interprets them as *epoch numbers*.  See
``docs/fault_injection.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import FaultPlanError, SimulationError
from repro.obs.ledger import current_ledger
from repro.utils.tracing import current_tracer

#: transition kinds, in the order they apply at equal timestamps —
#: recoveries/restorations before new faults, so a back-to-back window
#: pair ``[0, 1)`` + ``[1, 2)`` never double-fails a site.
CRASH = "crash"
RECOVER = "recover"
DEGRADE = "degrade"
RESTORE = "restore"
PARTITION = "partition"
HEAL = "heal"

_END_KINDS = (RECOVER, RESTORE, HEAL)


# --------------------------------------------------------------------- #
# plan building blocks
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CrashWindow:
    """Site ``site`` is down during ``[start, end)`` (``end=None``: forever)."""

    site: int
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        if self.site < 0:
            raise FaultPlanError(f"crash site must be >= 0, got {self.site}")
        _check_window(self.start, self.end, "crash")


@dataclass(frozen=True)
class LinkDegradation:
    """Link ``src -> dst`` cost is multiplied by ``factor`` during the window."""

    src: int
    dst: int
    factor: float
    start: float = 0.0
    end: Optional[float] = None
    symmetric: bool = True

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise FaultPlanError("link endpoints must be >= 0")
        if self.src == self.dst:
            raise FaultPlanError("cannot degrade a site's link to itself")
        # NaN fails the > comparison, so this also rejects NaN.  inf is
        # deliberately allowed: an infinitely degraded link delivers
        # nothing, i.e. the link is severed for the window's duration.
        if not self.factor > 0.0:
            raise FaultPlanError(
                f"degradation factor must be > 0, got {self.factor}"
            )
        _check_window(self.start, self.end, "degradation")


@dataclass(frozen=True)
class PartitionWindow:
    """Sites in ``group`` are cut off from every other site during the window."""

    group: Tuple[int, ...]
    start: float = 0.0
    end: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "group", tuple(int(s) for s in self.group))
        if not self.group:
            raise FaultPlanError("partition group cannot be empty")
        if len(set(self.group)) != len(self.group):
            raise FaultPlanError(f"partition group has duplicates: {self.group}")
        if min(self.group) < 0:
            raise FaultPlanError("partition sites must be >= 0")
        _check_window(self.start, self.end, "partition")


@dataclass(frozen=True)
class MessageFaultSpec:
    """Per-message fault probabilities for the protocol emulations."""

    loss: float = 0.0
    duplicate: float = 0.0
    delay_mean: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("loss", self.loss), ("duplicate", self.duplicate)):
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(
                    f"message {name} probability must lie in [0, 1], got {value}"
                )
        if self.delay_mean < 0.0:
            raise FaultPlanError(
                f"delay_mean must be >= 0, got {self.delay_mean}"
            )

    @property
    def active(self) -> bool:
        return self.loss > 0.0 or self.duplicate > 0.0 or self.delay_mean > 0.0


def _check_window(start: float, end: Optional[float], what: str) -> None:
    if start < 0.0 or not np.isfinite(start):
        raise FaultPlanError(f"{what} start must be finite and >= 0, got {start}")
    if end is not None and (not np.isfinite(end) or end <= start):
        raise FaultPlanError(
            f"{what} window must satisfy end > start, got [{start}, {end})"
        )


@dataclass(frozen=True)
class _Transition:
    """One state change derived from a plan window."""

    time: float
    priority: int  # 0: window ends, 1: window starts (at equal times)
    order: int  # declaration order (final tie-break)
    kind: str
    spec: object

    def sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.order)


# --------------------------------------------------------------------- #
# the plan
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FaultPlan:
    """A declarative, seeded schedule of faults.

    ``seed`` drives every probabilistic decision (message loss /
    duplication / delay); scheduled windows are deterministic by
    construction.  Build one in code or load it with
    :func:`load_fault_plan`.
    """

    crashes: Tuple[CrashWindow, ...] = ()
    degradations: Tuple[LinkDegradation, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    messages: MessageFaultSpec = field(default_factory=MessageFaultSpec)
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "degradations", tuple(self.degradations))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls()

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.crashes
            and not self.degradations
            and not self.partitions
            and not self.messages.active
        )

    def validate(self, num_sites: int) -> None:
        """Check every referenced site against the system size."""
        for window in self.crashes:
            if window.site >= num_sites:
                raise FaultPlanError(
                    f"crash site {window.site} out of range [0, {num_sites})"
                )
        for link in self.degradations:
            if link.src >= num_sites or link.dst >= num_sites:
                raise FaultPlanError(
                    f"degraded link ({link.src}, {link.dst}) out of range "
                    f"[0, {num_sites})"
                )
        for part in self.partitions:
            if max(part.group) >= num_sites:
                raise FaultPlanError(
                    f"partition group {part.group} out of range [0, {num_sites})"
                )
            if len(part.group) >= num_sites:
                raise FaultPlanError(
                    f"partition group {part.group} leaves no site outside it"
                )

    def transitions(self) -> List[_Transition]:
        """Every window start/end as a deterministically ordered list."""
        out: List[_Transition] = []
        order = 0
        for window in self.crashes:
            out.append(_Transition(window.start, 1, order, CRASH, window))
            if window.end is not None:
                out.append(_Transition(window.end, 0, order, RECOVER, window))
            order += 1
        for link in self.degradations:
            out.append(_Transition(link.start, 1, order, DEGRADE, link))
            if link.end is not None:
                out.append(_Transition(link.end, 0, order, RESTORE, link))
            order += 1
        for part in self.partitions:
            out.append(_Transition(part.start, 1, order, PARTITION, part))
            if part.end is not None:
                out.append(_Transition(part.end, 0, order, HEAL, part))
            order += 1
        out.sort(key=_Transition.sort_key)
        return out

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "crashes": [
                {"site": w.site, "start": w.start, "end": w.end}
                for w in self.crashes
            ],
            "degradations": [
                {
                    "src": d.src,
                    "dst": d.dst,
                    # json.dump would emit the bare token `Infinity`,
                    # which is not valid JSON; a severed link (inf
                    # factor) is serialised as the sentinel string
                    # "inf" instead (float("inf") parses it right back).
                    "factor": (
                        d.factor if np.isfinite(d.factor) else "inf"
                    ),
                    "start": d.start,
                    "end": d.end,
                    "symmetric": d.symmetric,
                }
                for d in self.degradations
            ],
            "partitions": [
                {"group": list(p.group), "start": p.start, "end": p.end}
                for p in self.partitions
            ],
            "messages": {
                "loss": self.messages.loss,
                "duplicate": self.messages.duplicate,
                "delay_mean": self.messages.delay_mean,
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        known = {"seed", "crashes", "degradations", "partitions", "messages"}
        unknown = set(data) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault-plan keys: {sorted(unknown)} "
                f"(expected a subset of {sorted(known)})"
            )
        try:
            crashes = tuple(
                CrashWindow(
                    site=int(w["site"]),
                    start=float(w.get("start", 0.0)),
                    end=None if w.get("end") is None else float(w["end"]),
                )
                for w in data.get("crashes", [])
            )
            degradations = tuple(
                LinkDegradation(
                    src=int(d["src"]),
                    dst=int(d["dst"]),
                    factor=float(d["factor"]),
                    start=float(d.get("start", 0.0)),
                    end=None if d.get("end") is None else float(d["end"]),
                    symmetric=bool(d.get("symmetric", True)),
                )
                for d in data.get("degradations", [])
            )
            partitions = tuple(
                PartitionWindow(
                    group=tuple(int(s) for s in p["group"]),
                    start=float(p.get("start", 0.0)),
                    end=None if p.get("end") is None else float(p["end"]),
                )
                for p in data.get("partitions", [])
            )
            spec = data.get("messages", {}) or {}
            messages = MessageFaultSpec(
                loss=float(spec.get("loss", 0.0)),
                duplicate=float(spec.get("duplicate", 0.0)),
                delay_mean=float(spec.get("delay_mean", 0.0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from None
        return cls(
            crashes=crashes,
            degradations=degradations,
            partitions=partitions,
            messages=messages,
            seed=int(data.get("seed", 0)),
        )

    def save(self, path: str) -> str:
        with open(path, "w", encoding="utf-8") as fp:
            # allow_nan=False: any non-finite float that slipped past
            # the sentinel encoding fails loudly here instead of
            # silently writing the invalid-JSON `Infinity`/`NaN` tokens.
            json.dump(self.to_dict(), fp, indent=2, allow_nan=False)
            fp.write("\n")
        return path


def load_fault_plan(path: str) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as fp:
            data = json.load(fp)
    except FileNotFoundError:
        raise FaultPlanError(f"no such fault plan: {path}") from None
    except json.JSONDecodeError as exc:
        raise FaultPlanError(f"{path} is not valid JSON: {exc}") from None
    return FaultPlan.from_dict(data)


# --------------------------------------------------------------------- #
# message-level faults (used by the distributed protocol emulations)
# --------------------------------------------------------------------- #
class MessageFaults:
    """Seeded per-message loss / duplication / delay decisions.

    One :meth:`judge` call per message send; the draw count per call is
    fixed while the spec is active, so decision streams are reproducible
    for a given ``(spec, seed)`` regardless of message content.
    """

    def __init__(self, spec: MessageFaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self._rng = np.random.default_rng(seed)
        self.losses = 0
        self.duplicates = 0
        self.total_delay = 0.0

    @property
    def active(self) -> bool:
        return self.spec.active

    def judge(self) -> Tuple[bool, bool, float]:
        """Decide one message's fate: ``(lost, duplicated, extra_delay)``."""
        if not self.spec.active:
            return (False, False, 0.0)
        draws = self._rng.random(2)
        lost = bool(draws[0] < self.spec.loss)
        duplicated = bool(draws[1] < self.spec.duplicate)
        delay = 0.0
        if self.spec.delay_mean > 0.0:
            delay = float(self._rng.exponential(self.spec.delay_mean))
        if lost:
            self.losses += 1
        if duplicated:
            self.duplicates += 1
        self.total_delay += delay
        return (lost, duplicated, delay)


class ProtocolFaults:
    """Round-clocked fault state shared by the protocol emulations.

    Tracks which sites are crashed as logical time (round number)
    advances, and exposes the plan's :class:`MessageFaults` stream.
    """

    def __init__(self, plan: FaultPlan, num_sites: int) -> None:
        plan.validate(num_sites)
        self.plan = plan
        self.messages = MessageFaults(plan.messages, plan.seed)
        self._transitions = [
            t for t in plan.transitions() if t.kind in (CRASH, RECOVER)
        ]
        self._cursor = 0
        self._depth: Dict[int, int] = {}
        self.crashed: Set[int] = set()

    def advance_to(self, time: float) -> List[Tuple[str, int]]:
        """Apply crash/recover transitions due at ``<= time``.

        Returns the applied ``(kind, site)`` changes, in order.
        """
        changes: List[Tuple[str, int]] = []
        while (
            self._cursor < len(self._transitions)
            and self._transitions[self._cursor].time <= time
        ):
            tr = self._transitions[self._cursor]
            self._cursor += 1
            site = tr.spec.site
            depth = self._depth.get(site, 0)
            if tr.kind == CRASH:
                self._depth[site] = depth + 1
                if depth == 0:
                    self.crashed.add(site)
                    changes.append((CRASH, site))
            else:
                self._depth[site] = depth - 1
                if depth == 1:
                    self.crashed.discard(site)
                    changes.append((RECOVER, site))
        return changes


# --------------------------------------------------------------------- #
# the injector
# --------------------------------------------------------------------- #
class FaultInjector:
    """Applies a :class:`FaultPlan` to a live :class:`ReplicaSystem`.

    Two driving modes, mutually exclusive per injector:

    * **pull** — :meth:`advance_to` applies every transition due at or
      before a timestamp; ``ReplicaSystem.replay`` calls it before each
      request and :meth:`drain` after the last one;
    * **push** — :meth:`install` schedules every transition onto a
      :class:`~repro.sim.engine.Simulator`.  Install *before*
      ``ReplicaSystem.attach`` so a transition at time ``t`` precedes
      requests at the same ``t`` (insertion order breaks ties), matching
      the pull mode's ``<=`` semantics.

    An injector is single-use: it walks its transition list forward only.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._transitions = plan.transitions()
        self._cursor = 0
        self._installed = False
        self._validated_for: Optional[int] = None
        self._crash_depth: Dict[int, int] = {}
        self._active_degradations: List[LinkDegradation] = []
        self._active_partitions: List[PartitionWindow] = []
        self.events_applied = 0

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._transitions)

    def message_faults(self) -> MessageFaults:
        """A fresh seeded message-fault stream for protocol emulations."""
        return MessageFaults(self.plan.messages, self.plan.seed)

    # ------------------------------------------------------------------ #
    def install(self, simulator, system) -> int:
        """Schedule every remaining transition onto ``simulator``.

        Returns the number of events scheduled.  Call before
        ``system.attach`` (see class docstring).
        """
        if self._installed:
            raise SimulationError("fault injector is already installed")
        self._check(system)
        scheduled = 0
        for index in range(self._cursor, len(self._transitions)):
            transition = self._transitions[index]
            simulator.schedule(
                transition.time,
                lambda tr=transition: self._apply(tr, system),
            )
            scheduled += 1
        self._installed = True
        self._cursor = len(self._transitions)
        return scheduled

    def advance_to(self, time: float, system) -> int:
        """Apply every transition due at or before ``time``; returns count."""
        if self._installed:
            raise SimulationError(
                "fault injector is installed on a simulator; "
                "advance_to would double-apply its transitions"
            )
        if self._cursor >= len(self._transitions):
            return 0
        self._check(system)
        applied = 0
        while (
            self._cursor < len(self._transitions)
            and self._transitions[self._cursor].time <= time
        ):
            self._apply(self._transitions[self._cursor], system)
            self._cursor += 1
            applied += 1
        return applied

    def drain(self, system) -> int:
        """Apply every remaining transition (end-of-replay bookkeeping)."""
        return self.advance_to(float("inf"), system)

    # ------------------------------------------------------------------ #
    def _check(self, system) -> None:
        num_sites = system.instance.num_sites
        if self._validated_for != num_sites:
            self.plan.validate(num_sites)
            self._validated_for = num_sites

    def _apply(self, transition: _Transition, system) -> None:
        tracer = current_tracer()
        ledger = current_ledger()
        kind, spec = transition.kind, transition.spec
        self.events_applied += 1
        if kind == CRASH:
            depth = self._crash_depth.get(spec.site, 0)
            self._crash_depth[spec.site] = depth + 1
            if depth == 0:
                system.fail_site(spec.site)
                system.metrics.record_fault("site_crash")
                tracer.event(
                    "fault.site_crash", site=spec.site, at=transition.time
                )
                if ledger.enabled:
                    ledger.record(
                        "fault", site=spec.site,
                        fault="site_crash", time=transition.time,
                    )
        elif kind == RECOVER:
            depth = self._crash_depth.get(spec.site, 0)
            self._crash_depth[spec.site] = depth - 1
            if depth == 1:
                refetches = system.recover_site(spec.site)
                system.metrics.record_fault("site_recovery")
                tracer.event(
                    "fault.site_recovery",
                    site=spec.site,
                    at=transition.time,
                    refetches=refetches,
                )
                if ledger.enabled:
                    ledger.record(
                        "fault", site=spec.site,
                        fault="site_recovery", time=transition.time,
                        refetches=refetches,
                    )
        elif kind == DEGRADE:
            self._active_degradations.append(spec)
            self._push_links(system)
            system.metrics.record_fault("link_degradation")
            tracer.event(
                "fault.link_degradation",
                src=spec.src,
                dst=spec.dst,
                factor=spec.factor,
                at=transition.time,
            )
            if ledger.enabled:
                ledger.record(
                    "fault", site=spec.src,
                    fault="link_degradation", dst=spec.dst,
                    factor=spec.factor, time=transition.time,
                )
        elif kind == RESTORE:
            self._active_degradations.remove(spec)
            self._push_links(system)
            system.metrics.record_fault("link_restoration")
            tracer.event(
                "fault.link_restoration",
                src=spec.src,
                dst=spec.dst,
                at=transition.time,
            )
            if ledger.enabled:
                ledger.record(
                    "fault", site=spec.src,
                    fault="link_restoration", dst=spec.dst,
                    time=transition.time,
                )
        elif kind == PARTITION:
            self._active_partitions.append(spec)
            self._push_links(system)
            system.metrics.record_fault("partition")
            tracer.event(
                "fault.partition", group=list(spec.group), at=transition.time
            )
            if ledger.enabled:
                ledger.record(
                    "fault", fault="partition",
                    group=list(spec.group), time=transition.time,
                )
        elif kind == HEAL:
            self._active_partitions.remove(spec)
            self._push_links(system)
            system.metrics.record_fault("partition_heal")
            tracer.event(
                "fault.partition_heal",
                group=list(spec.group),
                at=transition.time,
            )
            if ledger.enabled:
                ledger.record(
                    "fault", fault="partition_heal",
                    group=list(spec.group), time=transition.time,
                )
        else:  # pragma: no cover - transitions() only emits known kinds
            raise SimulationError(f"unknown fault transition kind {kind!r}")

    def _push_links(self, system) -> None:
        """Recompute link state from the active windows and push it.

        Recomputing from scratch (rather than multiplying incrementally)
        keeps the restore path *exact*: when the last window closes the
        system returns to its pristine base cost matrix, bit for bit.
        """
        m = system.instance.num_sites
        multipliers: Optional[np.ndarray] = None
        if self._active_degradations:
            multipliers = np.ones((m, m))
            for link in self._active_degradations:
                multipliers[link.src, link.dst] *= link.factor
                if link.symmetric:
                    multipliers[link.dst, link.src] *= link.factor
        unreachable: Optional[np.ndarray] = None
        if self._active_partitions:
            unreachable = np.zeros((m, m), dtype=bool)
            for part in self._active_partitions:
                inside = np.zeros(m, dtype=bool)
                inside[list(part.group)] = True
                cross = inside[:, None] ^ inside[None, :]
                unreachable |= cross
        if multipliers is not None:
            # An infinitely degraded link is a severed link: mark it
            # unreachable so requests route around it (or fail) instead
            # of being accounted at an infinite transfer cost.
            severed = ~np.isfinite(multipliers)
            if severed.any():
                if unreachable is None:
                    unreachable = severed
                else:
                    unreachable |= severed
        system.set_link_faults(multipliers, unreachable)


__all__ = [
    "CrashWindow",
    "LinkDegradation",
    "PartitionWindow",
    "MessageFaultSpec",
    "MessageFaults",
    "ProtocolFaults",
    "FaultPlan",
    "FaultInjector",
    "load_fault_plan",
]
