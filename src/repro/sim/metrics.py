"""Measurement side of the simulator.

NTC is accounted per transfer (``size * C(src, dst)``), broken down by
cause (read fetch, write shipment to the primary, update broadcast,
migration during scheme realisation).  Response times use a simple linear
latency model: a transfer of ``u`` units over per-unit cost ``c`` takes
``base_latency + u * c * unit_latency`` — enough to turn NTC shapes into
the response-time shapes the paper's introduction motivates.

Latencies are accumulated in :class:`~repro.utils.metrics.Histogram`\\ s
(log-scale buckets, ~9% quantile resolution) rather than raw lists, so a
multi-million-request run holds a few hundred counters instead of one
float per request.  Means stay exact (sum/count is tracked separately);
percentiles are bucket-resolution estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, TYPE_CHECKING

import numpy as np

from repro.errors import ValidationError
from repro.utils.metrics import Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.utils.telemetry import TelemetrySink

#: transfer cause labels
READ_FETCH = "read-fetch"
WRITE_TO_PRIMARY = "write-to-primary"
UPDATE_BROADCAST = "update-broadcast"
MIGRATION = "migration"

CAUSES = (READ_FETCH, WRITE_TO_PRIMARY, UPDATE_BROADCAST, MIGRATION)


@dataclass
class SimulationMetrics:
    """Accumulated measurements of one simulation run."""

    num_sites: int
    num_objects: int
    base_latency: float = 0.0
    unit_latency: float = 1.0

    ntc_by_cause: Dict[str, float] = field(init=False)
    ntc_by_site: np.ndarray = field(init=False)
    ntc_by_object: np.ndarray = field(init=False)
    transfers: int = field(default=0, init=False)
    local_reads: int = field(default=0, init=False)
    rejected_reads: int = field(default=0, init=False)
    rejected_writes: int = field(default=0, init=False)
    served_stale: int = field(default=0, init=False)
    read_latencies: Histogram = field(init=False)
    write_latencies: Histogram = field(init=False)
    fault_events: Dict[str, int] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_sites < 1 or self.num_objects < 1:
            raise ValidationError("metrics need at least one site and object")
        self.ntc_by_cause = {cause: 0.0 for cause in CAUSES}
        self.ntc_by_site = np.zeros(self.num_sites)
        self.ntc_by_object = np.zeros(self.num_objects)
        self.read_latencies = Histogram()
        self.write_latencies = Histogram()
        self.fault_events = {}

    # ------------------------------------------------------------------ #
    def record_transfer(
        self,
        cause: str,
        site: int,
        obj: int,
        size: float,
        unit_cost: float,
    ) -> float:
        """Account one transfer; returns its latency."""
        if cause not in self.ntc_by_cause:
            raise ValidationError(f"unknown transfer cause {cause!r}")
        ntc = size * unit_cost
        self.ntc_by_cause[cause] += ntc
        self.ntc_by_site[site] += ntc
        self.ntc_by_object[obj] += ntc
        self.transfers += 1
        return self.base_latency + ntc * self.unit_latency

    def record_read_latency(self, latency: float) -> None:
        self.read_latencies.record(latency)

    def record_write_latency(self, latency: float) -> None:
        self.write_latencies.record(latency)

    def record_local_read(self) -> None:
        """A read served by a local replica (zero transfer cost)."""
        self.local_reads += 1
        self.read_latencies.record(self.base_latency)

    def record_rejected_read(self) -> None:
        """A read that could not be served (requester or object down)."""
        self.rejected_reads += 1

    def record_rejected_write(self) -> None:
        """A write that could not be applied (writer or primary down)."""
        self.rejected_writes += 1

    def record_served_stale(self) -> None:
        """A read served from a stale replica (availability over
        freshness during a primary outage or partition)."""
        self.served_stale += 1

    def record_fault(self, kind: str) -> None:
        """Count one injected fault transition (crash, recovery, ...)."""
        self.fault_events[kind] = self.fault_events.get(kind, 0) + 1

    # ------------------------------------------------------------------ #
    @property
    def total_ntc(self) -> float:
        return float(sum(self.ntc_by_cause.values()))

    @property
    def request_ntc(self) -> float:
        """NTC excluding migration (comparable to the analytic ``D``)."""
        return self.total_ntc - self.ntc_by_cause[MIGRATION]

    def mean_read_latency(self) -> float:
        """Exact mean (the histogram tracks sum and count separately)."""
        return self.read_latencies.mean()

    def mean_write_latency(self) -> float:
        """Exact mean (the histogram tracks sum and count separately)."""
        return self.write_latencies.mean()

    def percentile_read_latency(self, q: float) -> float:
        """Bucket-resolution estimate (~9% relative); 0.0 when empty."""
        return self.read_latencies.percentile(q)

    def percentile_write_latency(self, q: float) -> float:
        """Bucket-resolution estimate (~9% relative); 0.0 when empty."""
        return self.write_latencies.percentile(q)

    def latency_summary(self) -> Dict[str, float]:
        """p50/p95/p99 (plus mean and count) for reads and writes.

        A run with zero completed requests of a kind returns the *same
        keys* with ``count == 0`` and ``NaN`` for mean and percentiles —
        an explicit "no data" marker rather than a fabricated 0.0 that
        would read as a perfect zero-latency run.
        """
        out: Dict[str, float] = {}
        for kind, hist in (
            ("read", self.read_latencies),
            ("write", self.write_latencies),
        ):
            out[f"{kind}_count"] = float(hist.count)
            if hist.count == 0:
                out[f"{kind}_mean"] = math.nan
                for q in (50.0, 95.0, 99.0):
                    out[f"{kind}_p{int(q)}"] = math.nan
                continue
            out[f"{kind}_mean"] = hist.mean()
            for q in (50.0, 95.0, 99.0):
                out[f"{kind}_p{int(q)}"] = hist.percentile(q)
        return out

    def summary(self) -> Dict[str, float]:
        out = {
            "total_ntc": self.total_ntc,
            "request_ntc": self.request_ntc,
            "transfers": float(self.transfers),
            "local_reads": float(self.local_reads),
            "rejected_reads": float(self.rejected_reads),
            "rejected_writes": float(self.rejected_writes),
            "mean_read_latency": self.mean_read_latency(),
            "mean_write_latency": self.mean_write_latency(),
            "p95_read_latency": self.percentile_read_latency(95.0),
            **{f"ntc[{cause}]": v for cause, v in self.ntc_by_cause.items()},
        }
        # Only present when faults actually fired, so a fault-free run's
        # summary is key-identical to one recorded before fault injection
        # existed (the empty-plan regression guarantee).  Stale serves
        # follow the same rule — they only happen under faults.
        if self.served_stale:
            out["served_stale"] = float(self.served_stale)
        if self.fault_events:
            out.update(
                {
                    f"faults[{kind}]": float(count)
                    for kind, count in sorted(self.fault_events.items())
                }
            )
        return out

    # ------------------------------------------------------------------ #
    def publish(self, sink: "TelemetrySink") -> None:
        """Push the accumulated measurements into a telemetry sink.

        Scalars become plain gauges; per-cause and per-site NTC become
        labelled gauge series (``repro_sim_ntc_by_cause{cause="..."}``,
        ``repro_sim_ntc_by_site{site="..."}``); latency quantiles land
        under ``repro_sim_latency{kind=...,stat=...}``.  A no-op when
        the sink is disabled.
        """
        if not sink.enabled:
            return
        sink.set_gauge("repro_sim_total_ntc", self.total_ntc)
        sink.set_gauge("repro_sim_request_ntc", self.request_ntc)
        sink.set_gauge("repro_sim_transfers", self.transfers)
        sink.set_gauge("repro_sim_local_reads", self.local_reads)
        sink.set_gauge("repro_sim_rejected_reads", self.rejected_reads)
        sink.set_gauge("repro_sim_rejected_writes", self.rejected_writes)
        sink.set_gauge("repro_sim_served_stale", self.served_stale)
        for cause, value in self.ntc_by_cause.items():
            sink.set_gauge("repro_sim_ntc_by_cause", value, cause=cause)
        for site, value in enumerate(self.ntc_by_site):
            sink.set_gauge(
                "repro_sim_ntc_by_site", float(value), site=site
            )
        for kind, value in sorted(self.latency_summary().items()):
            stat_kind, _, stat = kind.partition("_")
            sink.set_gauge(
                "repro_sim_latency", value, kind=stat_kind, stat=stat
            )
        for kind, count in sorted(self.fault_events.items()):
            sink.set_gauge("repro_sim_fault_events", count, kind=kind)


__all__ = [
    "SimulationMetrics",
    "READ_FETCH",
    "WRITE_TO_PRIMARY",
    "UPDATE_BROADCAST",
    "MIGRATION",
    "CAUSES",
]
