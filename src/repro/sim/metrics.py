"""Measurement side of the simulator.

NTC is accounted per transfer (``size * C(src, dst)``), broken down by
cause (read fetch, write shipment to the primary, update broadcast,
migration during scheme realisation).  Response times use a simple linear
latency model: a transfer of ``u`` units over per-unit cost ``c`` takes
``base_latency + u * c * unit_latency`` — enough to turn NTC shapes into
the response-time shapes the paper's introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.errors import ValidationError

#: transfer cause labels
READ_FETCH = "read-fetch"
WRITE_TO_PRIMARY = "write-to-primary"
UPDATE_BROADCAST = "update-broadcast"
MIGRATION = "migration"

CAUSES = (READ_FETCH, WRITE_TO_PRIMARY, UPDATE_BROADCAST, MIGRATION)


@dataclass
class SimulationMetrics:
    """Accumulated measurements of one simulation run."""

    num_sites: int
    num_objects: int
    base_latency: float = 0.0
    unit_latency: float = 1.0

    ntc_by_cause: Dict[str, float] = field(init=False)
    ntc_by_site: np.ndarray = field(init=False)
    ntc_by_object: np.ndarray = field(init=False)
    transfers: int = field(default=0, init=False)
    local_reads: int = field(default=0, init=False)
    rejected_reads: int = field(default=0, init=False)
    rejected_writes: int = field(default=0, init=False)
    read_latencies: List[float] = field(init=False)
    write_latencies: List[float] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_sites < 1 or self.num_objects < 1:
            raise ValidationError("metrics need at least one site and object")
        self.ntc_by_cause = {cause: 0.0 for cause in CAUSES}
        self.ntc_by_site = np.zeros(self.num_sites)
        self.ntc_by_object = np.zeros(self.num_objects)
        self.read_latencies = []
        self.write_latencies = []

    # ------------------------------------------------------------------ #
    def record_transfer(
        self,
        cause: str,
        site: int,
        obj: int,
        size: float,
        unit_cost: float,
    ) -> float:
        """Account one transfer; returns its latency."""
        if cause not in self.ntc_by_cause:
            raise ValidationError(f"unknown transfer cause {cause!r}")
        ntc = size * unit_cost
        self.ntc_by_cause[cause] += ntc
        self.ntc_by_site[site] += ntc
        self.ntc_by_object[obj] += ntc
        self.transfers += 1
        return self.base_latency + ntc * self.unit_latency

    def record_read_latency(self, latency: float) -> None:
        self.read_latencies.append(latency)

    def record_write_latency(self, latency: float) -> None:
        self.write_latencies.append(latency)

    def record_local_read(self) -> None:
        """A read served by a local replica (zero transfer cost)."""
        self.local_reads += 1
        self.read_latencies.append(self.base_latency)

    def record_rejected_read(self) -> None:
        """A read that could not be served (requester or object down)."""
        self.rejected_reads += 1

    def record_rejected_write(self) -> None:
        """A write that could not be applied (writer or primary down)."""
        self.rejected_writes += 1

    # ------------------------------------------------------------------ #
    @property
    def total_ntc(self) -> float:
        return float(sum(self.ntc_by_cause.values()))

    @property
    def request_ntc(self) -> float:
        """NTC excluding migration (comparable to the analytic ``D``)."""
        return self.total_ntc - self.ntc_by_cause[MIGRATION]

    def mean_read_latency(self) -> float:
        return float(np.mean(self.read_latencies)) if self.read_latencies else 0.0

    def mean_write_latency(self) -> float:
        return (
            float(np.mean(self.write_latencies))
            if self.write_latencies
            else 0.0
        )

    def percentile_read_latency(self, q: float) -> float:
        if not self.read_latencies:
            return 0.0
        return float(np.percentile(self.read_latencies, q))

    def summary(self) -> Dict[str, float]:
        return {
            "total_ntc": self.total_ntc,
            "request_ntc": self.request_ntc,
            "transfers": float(self.transfers),
            "local_reads": float(self.local_reads),
            "rejected_reads": float(self.rejected_reads),
            "rejected_writes": float(self.rejected_writes),
            "mean_read_latency": self.mean_read_latency(),
            "mean_write_latency": self.mean_write_latency(),
            "p95_read_latency": self.percentile_read_latency(95.0),
            **{f"ntc[{cause}]": v for cause, v in self.ntc_by_cause.items()},
        }


__all__ = [
    "SimulationMetrics",
    "READ_FETCH",
    "WRITE_TO_PRIMARY",
    "UPDATE_BROADCAST",
    "MIGRATION",
    "CAUSES",
]
