"""The discrete-event simulation engine.

Minimal but complete: events execute in time order (ties broken by
scheduling order), actions may schedule further events, and the run can be
bounded by a horizon.  Monotonicity is enforced — scheduling into the past
is a :class:`~repro.errors.SimulationError`, which catches protocol bugs
early.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.events import Action, EventQueue
from repro.utils.profiler import current_profiler
from repro.utils.telemetry import current_sink
from repro.utils.tracing import current_tracer


class Simulator:
    """Drives an :class:`~repro.sim.events.EventQueue` forward in time.

    ``trace_sample_every`` controls event-loop tracing granularity: with
    tracing enabled, one ``sim.progress`` event is emitted every that
    many simulation events (default 1000), so a multi-million-event run
    stays cheap to trace.  The run itself is wrapped in a ``sim.run``
    span.
    """

    def __init__(self, trace_sample_every: int = 1000) -> None:
        if trace_sample_every < 1:
            raise SimulationError(
                f"trace_sample_every must be >= 1, got {trace_sample_every}"
            )
        self._queue = EventQueue()
        self.now = 0.0
        self.events_processed = 0
        self.trace_sample_every = trace_sample_every

    def schedule(self, time: float, action: Action) -> None:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        self._queue.push(time, action)

    def schedule_in(self, delay: float, action: Action) -> None:
        """Schedule ``action`` after a relative ``delay``."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.schedule(self.now + delay, action)

    def run(self, until: Optional[float] = None) -> None:
        """Process events until the queue drains or ``until`` is reached.

        With a horizon, events scheduled at exactly ``until`` still run
        (closed interval), matching the intuition that a run "until t"
        includes t.
        """
        tracer = current_tracer()
        profiler = current_profiler()
        sink = current_sink()
        sample = self.trace_sample_every
        # Two loop bodies so the uninstrumented hot path carries zero
        # per-event tracing/telemetry/profiling cost (not even a boolean
        # check).
        instrumented = tracer.enabled or profiler.enabled or sink.enabled
        with tracer.span("sim.run", until=until) as span:
            if not instrumented:
                while self._queue:
                    next_time = self._queue.peek_time()
                    assert next_time is not None
                    if until is not None and next_time > until:
                        break
                    event = self._queue.pop()
                    self.now = event.time
                    event.action()
                    self.events_processed += 1
            else:
                while self._queue:
                    next_time = self._queue.peek_time()
                    assert next_time is not None
                    if until is not None and next_time > until:
                        break
                    event = self._queue.pop()
                    self.now = event.time
                    event.action()
                    self.events_processed += 1
                    profiler.tick()
                    if self.events_processed % sample == 0:
                        tracer.event(
                            "sim.progress",
                            sim_time=self.now,
                            processed=self.events_processed,
                            pending=len(self._queue),
                        )
                        sink.set_gauge(
                            "repro_sim_queue_depth", len(self._queue)
                        )
            if until is not None and until > self.now:
                self.now = until
            span.set(processed=self.events_processed, sim_time=self.now)
            if sink.enabled:
                sink.set_gauge(
                    "repro_sim_events_processed", self.events_processed
                )
                sink.set_gauge("repro_sim_queue_depth", len(self._queue))

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        if not self._queue:
            return False
        event = self._queue.pop()
        self.now = event.time
        event.action()
        self.events_processed += 1
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)


__all__ = ["Simulator"]
