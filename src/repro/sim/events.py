"""Event queue of the discrete-event engine.

A classic priority queue of ``(time, sequence, action)``; the sequence
number makes ordering deterministic among simultaneous events (insertion
order wins), which keeps every simulation bit-reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError, ValidationError

Action = Callable[[], None]


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """An action scheduled at a simulated time."""

    time: float
    sequence: int
    action: Action = field(compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValidationError(f"event time must be >= 0, got {self.time}")


class EventQueue:
    """Deterministic min-heap of scheduled events."""

    def __init__(self) -> None:
        self._heap: List[ScheduledEvent] = []
        self._counter = itertools.count()

    def push(self, time: float, action: Action) -> ScheduledEvent:
        event = ScheduledEvent(time, next(self._counter), action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent:
        if not self._heap:
            raise SimulationError("cannot pop from an empty event queue")
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


__all__ = ["Action", "ScheduledEvent", "EventQueue"]
