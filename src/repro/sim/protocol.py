"""The read/write protocol of Section 2.1, executed per request.

* **Read**: site ``i`` addresses its nearest replicator ``SN_ik`` and
  fetches the object (one transfer of ``o_k`` units over ``C(i, SN_ik)``);
  a local replica serves at zero transfer cost.
* **Write**: site ``i`` ships the updated object to the primary ``SP_k``
  (``o_k`` units over ``C(i, SP_k)``), which then broadcasts it to every
  other replicator ``j`` (``o_k`` units over ``C(SP_k, j)`` each).  The
  writer itself, if a replicator, is not re-sent the update it authored.

Summing these per-request costs over a trace whose counts match the
instance's (r, w) matrices reproduces the analytic ``D(X)`` exactly.

Scheme *realisation* (the nightly redistribution of Section 5) is also
modelled: migrating a replica to a new site pulls the payload from the
nearest pre-existing replica, and its cost is accounted separately as
``MIGRATION`` traffic.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import SimulationError, ValidationError
from repro.sim.engine import Simulator
from repro.sim.metrics import (
    MIGRATION,
    READ_FETCH,
    UPDATE_BROADCAST,
    WRITE_TO_PRIMARY,
    SimulationMetrics,
)
from repro.workload.trace import READ, WRITE, Request


class ReplicaSystem:
    """Simulated sites serving reads and writes under a replication scheme.

    Parameters
    ----------
    instance:
        Network, sizes and primaries (its count matrices are *not* used —
        traffic comes from the request trace).
    scheme:
        The deployed replica placement; adopted (copied) at construction
        and mutable afterwards via :meth:`realize_scheme`.
    update_fraction:
        Fraction of the object shipped per write (1.0 = paper's policy).
    """

    def __init__(
        self,
        instance: DRPInstance,
        scheme: ReplicationScheme,
        metrics: Optional[SimulationMetrics] = None,
        update_fraction: float = 1.0,
        write_strategy: "WriteStrategy | str" = None,
    ) -> None:
        from repro.core.strategies import WriteStrategy

        if not 0.0 <= update_fraction <= 1.0:
            raise ValidationError(
                f"update_fraction must lie in [0, 1], got {update_fraction}"
            )
        self.instance = instance
        self.scheme = scheme.copy()
        # A scheme computed against drifted patterns of the same physical
        # system is fine; a different network or storage layout is not.
        self._check_storage_compatible(scheme.instance)
        self.metrics = metrics or SimulationMetrics(
            instance.num_sites, instance.num_objects
        )
        self._uf = update_fraction
        self.write_strategy = WriteStrategy(
            write_strategy or WriteStrategy.PRIMARY_BROADCAST
        )
        # Per-replica freshness for the invalidation strategy; primaries
        # are always fresh.
        self._valid = np.ones(
            (instance.num_sites, instance.num_objects), dtype=bool
        )
        # Failed (down) sites: serve nothing, issue nothing, miss updates.
        self._failed: set = set()

    # ------------------------------------------------------------------ #
    # failure injection
    # ------------------------------------------------------------------ #
    def fail_site(self, site: int) -> None:
        """Take a site down: it serves nothing and misses all updates."""
        if not 0 <= site < self.instance.num_sites:
            raise ValidationError(
                f"site {site} out of range [0, {self.instance.num_sites})"
            )
        self._failed.add(site)

    def recover_site(self, site: int) -> int:
        """Bring a site back; its replicas resynchronise.

        Under the invalidation strategy recovered replicas are simply
        marked stale (they refetch lazily on the next read); under the
        eager strategies each replica refetches immediately from its
        object's primary, accounted as ``MIGRATION`` (recovery) traffic.
        Returns the number of immediate refetches.
        """
        if site not in self._failed:
            raise ValidationError(f"site {site} is not failed")
        from repro.core.strategies import WriteStrategy

        self._failed.discard(site)
        refetches = 0
        for obj in self.scheme.objects_at(site):
            k = int(obj)
            primary = int(self.instance.primaries[k])
            if primary == site:
                continue  # the primary copy is authoritative by definition
            if self.write_strategy is WriteStrategy.INVALIDATION:
                self._valid[site, k] = False
            else:
                self.metrics.record_transfer(
                    MIGRATION,
                    site,
                    k,
                    float(self.instance.sizes[k]),
                    float(self.instance.cost[site, primary]),
                )
                refetches += 1
        return refetches

    @property
    def failed_sites(self) -> frozenset:
        return frozenset(self._failed)

    def _alive_nearest(self, site: int, obj: int) -> Optional[int]:
        """Nearest *alive* replicator of ``obj`` from ``site``, if any."""
        reps = [
            int(j)
            for j in self.scheme.replicators(obj)
            if int(j) not in self._failed
        ]
        if not reps:
            return None
        costs = self.instance.cost[site, reps]
        return reps[int(np.argmin(costs))]

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _refresh_replica(self, site: int, obj: int) -> float:
        """Refetch a stale replica from the primary; returns its latency."""
        primary = int(self.instance.primaries[obj])
        latency = self.metrics.record_transfer(
            READ_FETCH,
            site,
            obj,
            float(self.instance.sizes[obj]),
            float(self.instance.cost[site, primary]),
        )
        self._valid[site, obj] = True
        return latency

    def handle_read(self, site: int, obj: int) -> float:
        """Serve a read; returns its latency.

        Under the invalidation strategy a stale replica (local or
        nearest) first refetches the current version from the primary.
        """
        from repro.core.strategies import WriteStrategy

        if site in self._failed:
            self.metrics.record_rejected_read()
            return 0.0
        invalidation = self.write_strategy is WriteStrategy.INVALIDATION
        primary_alive = (
            int(self.instance.primaries[obj]) not in self._failed
        )
        if self.scheme.holds(site, obj):
            if invalidation and not self._valid[site, obj]:
                if primary_alive:
                    latency = self._refresh_replica(site, obj)
                    self.metrics.record_read_latency(latency)
                    return latency
                # primary down: serve the stale copy (availability over
                # freshness during the outage)
            self.metrics.record_local_read()
            return self.metrics.base_latency
        nearest = self._alive_nearest(site, obj)
        if nearest is None:
            self.metrics.record_rejected_read()  # object unavailable
            return 0.0
        latency = 0.0
        if invalidation and not self._valid[nearest, obj] and primary_alive:
            latency += self._refresh_replica(nearest, obj)
        latency += self.metrics.record_transfer(
            READ_FETCH,
            site,
            obj,
            float(self.instance.sizes[obj]),
            float(self.instance.cost[site, nearest]),
        )
        self.metrics.record_read_latency(latency)
        return latency

    def handle_write(self, site: int, obj: int) -> float:
        """Apply a write; returns the writer-visible latency.

        * primary-broadcast (paper): ship to the primary, which
          broadcasts to the other replicators — the writer waits only for
          the primary leg;
        * writer-multicast: the writer ships directly to every
          replicator and waits for the slowest leg;
        * invalidation: ship to the primary; all other replicas are
          marked stale (invalidation messages are cost-free control
          traffic).
        """
        from repro.core.strategies import WriteStrategy

        if site in self._failed:
            self.metrics.record_rejected_write()
            return 0.0
        size = self._uf * float(self.instance.sizes[obj])
        primary = int(self.instance.primaries[obj])

        if self.write_strategy is WriteStrategy.WRITER_MULTICAST:
            latency = self.metrics.base_latency
            for replicator in self.scheme.replicators(obj):
                j = int(replicator)
                if j == site or j in self._failed:
                    continue  # down replicas miss updates
                leg = self.metrics.record_transfer(
                    UPDATE_BROADCAST,
                    j,
                    obj,
                    size,
                    float(self.instance.cost[site, j]),
                )
                latency = max(latency, leg)
            self.metrics.record_write_latency(latency)
            return latency

        if primary in self._failed:
            # the primary-copy protocol cannot apply writes while the
            # primary is down (no automatic failover in the paper's model)
            self.metrics.record_rejected_write()
            return 0.0
        latency = self.metrics.record_transfer(
            WRITE_TO_PRIMARY,
            site,
            obj,
            size,
            float(self.instance.cost[site, primary]),
        )
        if self.write_strategy is WriteStrategy.INVALIDATION:
            # stale-mark every replica except the primary and the writer
            # (which authored the new version locally, if it holds one)
            for replicator in self.scheme.replicators(obj):
                j = int(replicator)
                if j in (primary, site):
                    continue
                self._valid[j, obj] = False
        else:  # PRIMARY_BROADCAST (the paper's Eq. 4 accounting)
            for replicator in self.scheme.replicators(obj):
                j = int(replicator)
                if j == site or j == primary or j in self._failed:
                    continue
                self.metrics.record_transfer(
                    UPDATE_BROADCAST,
                    j,
                    obj,
                    size,
                    float(self.instance.cost[primary, j]),
                )
        self.metrics.record_write_latency(latency)
        return latency

    def handle_request(self, request: Request) -> float:
        if request.kind == READ:
            return self.handle_read(request.site, request.obj)
        return self.handle_write(request.site, request.obj)

    # ------------------------------------------------------------------ #
    # trace replay
    # ------------------------------------------------------------------ #
    def replay(self, trace: Iterable[Request]) -> SimulationMetrics:
        """Replay a whole trace immediately (no event scheduling)."""
        for request in trace:
            self.handle_request(request)
        return self.metrics

    def attach(self, simulator: Simulator, trace: Iterable[Request]) -> None:
        """Schedule every request of ``trace`` onto ``simulator``."""
        for request in trace:
            simulator.schedule(
                request.time,
                lambda req=request: self.handle_request(req),
            )

    # ------------------------------------------------------------------ #
    # scheme realisation
    # ------------------------------------------------------------------ #
    def realize_scheme(self, target: ReplicationScheme) -> int:
        """Migrate to ``target``: create missing replicas, drop stale ones.

        New replicas pull their payload from the nearest *pre-existing*
        replica (accounted as ``MIGRATION`` traffic); deallocation is
        free.  Returns the number of migrations performed.
        """
        self._check_storage_compatible(target.instance)
        current = self.scheme.matrix
        desired = target.matrix
        migrations = 0
        # Drops first so capacity frees up before additions land.
        for site, obj in zip(*np.nonzero(current & ~desired)):
            self.scheme.drop_replica(int(site), int(obj))
        for site, obj in zip(*np.nonzero(desired & ~current)):
            site, obj = int(site), int(obj)
            source = int(self.scheme.nearest_sites(obj)[site])
            self.metrics.record_transfer(
                MIGRATION,
                site,
                obj,
                float(self.instance.sizes[obj]),
                float(self.instance.cost[site, source]),
            )
            self.scheme.add_replica(site, obj)
            self._valid[site, obj] = True  # migrated copies are current
            migrations += 1
        if not np.array_equal(self.scheme.matrix, target.matrix):
            raise SimulationError(
                "scheme realisation did not converge to the target"
            )
        return migrations

    def _check_storage_compatible(self, other: DRPInstance) -> None:
        """Same network/storage layout; patterns are allowed to differ.

        The adaptive loop (Section 5) realises schemes computed against
        drifted patterns on the same physical system.
        """
        base = self.instance
        if (
            other.num_sites != base.num_sites
            or other.num_objects != base.num_objects
            or not np.array_equal(other.cost, base.cost)
            or not np.array_equal(other.sizes, base.sizes)
            or not np.array_equal(other.capacities, base.capacities)
            or not np.array_equal(other.primaries, base.primaries)
        ):
            raise ValidationError(
                "target scheme's instance has a different network or "
                "storage layout"
            )


__all__ = ["ReplicaSystem"]
