"""The read/write protocol of Section 2.1, executed per request.

* **Read**: site ``i`` addresses its nearest replicator ``SN_ik`` and
  fetches the object (one transfer of ``o_k`` units over ``C(i, SN_ik)``);
  a local replica serves at zero transfer cost.
* **Write**: site ``i`` ships the updated object to the primary ``SP_k``
  (``o_k`` units over ``C(i, SP_k)``), which then broadcasts it to every
  other replicator ``j`` (``o_k`` units over ``C(SP_k, j)`` each).  The
  writer itself, if a replicator, is not re-sent the update it authored.

Summing these per-request costs over a trace whose counts match the
instance's (r, w) matrices reproduces the analytic ``D(X)`` exactly.

Scheme *realisation* (the nightly redistribution of Section 5) is also
modelled: migrating a replica to a new site pulls the payload from the
nearest pre-existing replica, and its cost is accounted separately as
``MIGRATION`` traffic.

Degraded operation (:mod:`repro.sim.faults`) layers on top: sites crash
and recover over scheduled windows, link costs degrade by multiplicative
factors, and partitions make whole site groups mutually unreachable.
Requests route around all of it — reads fall back to the nearest *alive,
reachable* replica, writes reject when the primary is unavailable, and
realisation pulls payloads only from sources that can actually be
contacted.  With no faults injected every one of those paths reduces to
the original cost-exact protocol.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TYPE_CHECKING

import numpy as np

from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import SimulationError, ValidationError
from repro.obs.ledger import current_ledger
from repro.sim.engine import Simulator
from repro.sim.metrics import (
    MIGRATION,
    READ_FETCH,
    UPDATE_BROADCAST,
    WRITE_TO_PRIMARY,
    SimulationMetrics,
)
from repro.workload.trace import READ, WRITE, Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.faults import FaultInjector


class ReplicaSystem:
    """Simulated sites serving reads and writes under a replication scheme.

    Parameters
    ----------
    instance:
        Network, sizes and primaries (its count matrices are *not* used —
        traffic comes from the request trace).
    scheme:
        The deployed replica placement; adopted (copied) at construction
        and mutable afterwards via :meth:`realize_scheme`.
    update_fraction:
        Fraction of the object shipped per write (1.0 = paper's policy).
    """

    def __init__(
        self,
        instance: DRPInstance,
        scheme: ReplicationScheme,
        metrics: Optional[SimulationMetrics] = None,
        update_fraction: float = 1.0,
        write_strategy: "WriteStrategy | str" = None,
    ) -> None:
        from repro.core.strategies import WriteStrategy

        if not 0.0 <= update_fraction <= 1.0:
            raise ValidationError(
                f"update_fraction must lie in [0, 1], got {update_fraction}"
            )
        # Link-fault state must exist before the ``instance`` setter runs.
        self._multipliers: Optional[np.ndarray] = None
        self._unreachable: Optional[np.ndarray] = None
        self.instance = instance
        self.scheme = scheme.copy()
        # A scheme computed against drifted patterns of the same physical
        # system is fine; a different network or storage layout is not.
        self._check_storage_compatible(scheme.instance)
        self.metrics = metrics or SimulationMetrics(
            instance.num_sites, instance.num_objects
        )
        self._uf = update_fraction
        self.write_strategy = WriteStrategy(
            write_strategy or WriteStrategy.PRIMARY_BROADCAST
        )
        # Per-replica freshness for the invalidation strategy; primaries
        # are always fresh.
        self._valid = np.ones(
            (instance.num_sites, instance.num_objects), dtype=bool
        )
        # Failed (down) sites: serve nothing, issue nothing, miss updates.
        self._failed: set = set()

    # ------------------------------------------------------------------ #
    # link faults (degradation / partition)
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> DRPInstance:
        return self._instance

    @instance.setter
    def instance(self, value: DRPInstance) -> None:
        # The adaptive loop swaps in drifted-pattern instances of the
        # same physical network; keep the effective cost matrix in sync
        # with whatever link faults are currently active.
        self._instance = value
        self._cost = (
            value.cost
            if self._multipliers is None
            else value.cost * self._multipliers
        )

    @property
    def effective_cost(self) -> np.ndarray:
        """The per-unit cost matrix currently in force (faults applied)."""
        return self._cost

    def set_link_faults(
        self,
        multipliers: Optional[np.ndarray],
        unreachable: Optional[np.ndarray],
    ) -> None:
        """Install (or clear, with ``None``) link-level fault state.

        ``multipliers`` scales the base cost matrix element-wise;
        ``unreachable[i, j]`` marks the ``i -> j`` link as delivering
        nothing at all (partition).  Called by
        :class:`~repro.sim.faults.FaultInjector`; passing ``None`` for
        both restores the pristine base matrix exactly.
        """
        m = self._instance.num_sites
        for matrix, name in ((multipliers, "multipliers"),
                             (unreachable, "unreachable")):
            if matrix is not None and matrix.shape != (m, m):
                raise ValidationError(
                    f"{name} must have shape {(m, m)}, got {matrix.shape}"
                )
        self._multipliers = multipliers
        self._unreachable = unreachable
        self._cost = (
            self._instance.cost
            if multipliers is None
            else self._instance.cost * multipliers
        )

    @property
    def has_link_faults(self) -> bool:
        """True while any degradation or partition is in force."""
        return self._multipliers is not None or self._unreachable is not None

    def _reachable(self, src: int, dst: int) -> bool:
        """True when a transfer ``src -> dst`` can currently be delivered."""
        return self._unreachable is None or not self._unreachable[src, dst]

    # ------------------------------------------------------------------ #
    # failure injection
    # ------------------------------------------------------------------ #
    def fail_site(self, site: int) -> None:
        """Take a site down: it serves nothing and misses all updates."""
        if not 0 <= site < self.instance.num_sites:
            raise ValidationError(
                f"site {site} out of range [0, {self.instance.num_sites})"
            )
        self._failed.add(site)

    def recover_site(self, site: int) -> int:
        """Bring a site back; its replicas resynchronise.

        Under the invalidation strategy recovered replicas are simply
        marked stale (they refetch lazily on the next read); under the
        eager strategies each replica refetches immediately from its
        object's primary, accounted as ``MIGRATION`` (recovery) traffic.
        Returns the number of immediate refetches.
        """
        if site not in self._failed:
            raise ValidationError(f"site {site} is not failed")
        from repro.core.strategies import WriteStrategy

        self._failed.discard(site)
        refetches = 0
        for obj in self.scheme.objects_at(site):
            k = int(obj)
            primary = int(self.instance.primaries[k])
            if primary == site:
                continue  # the primary copy is authoritative by definition
            if (
                self.write_strategy is WriteStrategy.INVALIDATION
                or primary in self._failed
                or not self._reachable(site, primary)
            ):
                # No eager refetch possible (or wanted): mark stale so an
                # invalidation read refreshes lazily once the primary is
                # reachable again.  Eager strategies served from such a
                # copy are stale-but-available, as during a primary
                # outage.
                self._valid[site, k] = False
            else:
                self.metrics.record_transfer(
                    MIGRATION,
                    site,
                    k,
                    float(self.instance.sizes[k]),
                    float(self._cost[site, primary]),
                )
                self._valid[site, k] = True
                refetches += 1
        return refetches

    @property
    def failed_sites(self) -> frozenset:
        return frozenset(self._failed)

    def _alive_nearest(self, site: int, obj: int) -> Optional[int]:
        """Nearest alive, *reachable* replicator of ``obj`` from ``site``."""
        reps = [
            int(j)
            for j in self.scheme.replicators(obj)
            if int(j) not in self._failed
        ]
        if self._unreachable is not None:
            reps = [
                j for j in reps if j == site or not self._unreachable[site, j]
            ]
        if not reps:
            return None
        costs = self._cost[site, reps]
        return reps[int(np.argmin(costs))]

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _refresh_replica(self, site: int, obj: int) -> float:
        """Refetch a stale replica from the primary; returns its latency."""
        primary = int(self.instance.primaries[obj])
        latency = self.metrics.record_transfer(
            READ_FETCH,
            site,
            obj,
            float(self.instance.sizes[obj]),
            float(self._cost[site, primary]),
        )
        self._valid[site, obj] = True
        return latency

    def _can_refresh(self, holder: int, obj: int) -> bool:
        """Can ``holder`` refetch ``obj`` from its primary right now?"""
        primary = int(self.instance.primaries[obj])
        return primary not in self._failed and self._reachable(holder, primary)

    def handle_read(self, site: int, obj: int) -> float:
        """Serve a read; returns its latency.

        Under the invalidation strategy a stale replica (local or
        nearest) first refetches the current version from the primary.
        """
        from repro.core.strategies import WriteStrategy

        if site in self._failed:
            self.metrics.record_rejected_read()
            return 0.0
        invalidation = self.write_strategy is WriteStrategy.INVALIDATION
        if self.scheme.holds(site, obj):
            if invalidation and not self._valid[site, obj]:
                if self._can_refresh(site, obj):
                    latency = self._refresh_replica(site, obj)
                    self.metrics.record_read_latency(latency)
                    return latency
                # primary down or unreachable: serve the stale copy
                # (availability over freshness during the outage)
                self.metrics.record_served_stale()
            self.metrics.record_local_read()
            return self.metrics.base_latency
        nearest = self._alive_nearest(site, obj)
        if nearest is None:
            self.metrics.record_rejected_read()  # object unavailable
            return 0.0
        latency = 0.0
        if invalidation and not self._valid[nearest, obj]:
            if self._can_refresh(nearest, obj):
                latency += self._refresh_replica(nearest, obj)
            else:
                # the nearest holder cannot refresh either: the fetched
                # copy is stale-but-available
                self.metrics.record_served_stale()
        latency += self.metrics.record_transfer(
            READ_FETCH,
            site,
            obj,
            float(self.instance.sizes[obj]),
            float(self._cost[site, nearest]),
        )
        self.metrics.record_read_latency(latency)
        return latency

    def handle_write(self, site: int, obj: int) -> float:
        """Apply a write; returns the writer-visible latency.

        * primary-broadcast (paper): ship to the primary, which
          broadcasts to the other replicators — the writer waits only for
          the primary leg;
        * writer-multicast: the writer ships directly to every
          replicator and waits for the slowest leg;
        * invalidation: ship to the primary; all other replicas are
          marked stale (invalidation messages are cost-free control
          traffic).
        """
        from repro.core.strategies import WriteStrategy

        if site in self._failed:
            self.metrics.record_rejected_write()
            return 0.0
        size = self._uf * float(self.instance.sizes[obj])
        primary = int(self.instance.primaries[obj])

        if self.write_strategy is WriteStrategy.WRITER_MULTICAST:
            latency = self.metrics.base_latency
            for replicator in self.scheme.replicators(obj):
                j = int(replicator)
                if j == site or j in self._failed:
                    continue  # down replicas miss updates
                if not self._reachable(site, j):
                    # partitioned replicas miss updates too: the copy
                    # goes stale until the partition heals
                    self._valid[j, obj] = False
                    continue
                leg = self.metrics.record_transfer(
                    UPDATE_BROADCAST,
                    j,
                    obj,
                    size,
                    float(self._cost[site, j]),
                )
                latency = max(latency, leg)
            self.metrics.record_write_latency(latency)
            return latency

        if primary in self._failed or not self._reachable(site, primary):
            # the primary-copy protocol cannot apply writes while the
            # primary is down or unreachable (no automatic failover in
            # the paper's model)
            self.metrics.record_rejected_write()
            return 0.0
        latency = self.metrics.record_transfer(
            WRITE_TO_PRIMARY,
            site,
            obj,
            size,
            float(self._cost[site, primary]),
        )
        if self.write_strategy is WriteStrategy.INVALIDATION:
            # stale-mark every replica except the primary and the writer
            # (which authored the new version locally, if it holds one);
            # replicas the primary cannot reach are stale-marked too —
            # they would have missed this invalidation, and marking them
            # keeps the freshness matrix conservative
            for replicator in self.scheme.replicators(obj):
                j = int(replicator)
                if j in (primary, site):
                    continue
                self._valid[j, obj] = False
        else:  # PRIMARY_BROADCAST (the paper's Eq. 4 accounting)
            for replicator in self.scheme.replicators(obj):
                j = int(replicator)
                if j == site or j == primary or j in self._failed:
                    continue
                if not self._reachable(primary, j):
                    self._valid[j, obj] = False  # missed this update
                    continue
                self.metrics.record_transfer(
                    UPDATE_BROADCAST,
                    j,
                    obj,
                    size,
                    float(self._cost[primary, j]),
                )
        self.metrics.record_write_latency(latency)
        return latency

    def handle_request(self, request: Request) -> float:
        if request.kind == READ:
            return self.handle_read(request.site, request.obj)
        return self.handle_write(request.site, request.obj)

    # ------------------------------------------------------------------ #
    # trace replay
    # ------------------------------------------------------------------ #
    def replay(
        self,
        trace: Iterable[Request],
        injector: "Optional[FaultInjector]" = None,
    ) -> SimulationMetrics:
        """Replay a whole trace immediately (no event scheduling).

        With an ``injector``, fault transitions scheduled at or before
        each request's timestamp are applied first, and any remaining
        transitions are drained after the last request — so a replay
        sees exactly the fault timeline a scheduled run would.  With
        ``injector=None`` this is the original zero-overhead loop.
        """
        if injector is None:
            for request in trace:
                self.handle_request(request)
            return self.metrics
        for request in trace:
            injector.advance_to(request.time, self)
            self.handle_request(request)
        injector.drain(self)
        return self.metrics

    def attach(self, simulator: Simulator, trace: Iterable[Request]) -> None:
        """Schedule every request of ``trace`` onto ``simulator``."""
        for request in trace:
            simulator.schedule(
                request.time,
                lambda req=request: self.handle_request(req),
            )

    # ------------------------------------------------------------------ #
    # scheme realisation
    # ------------------------------------------------------------------ #
    def realize_scheme(
        self,
        target: ReplicationScheme,
        skip_unreachable: bool = False,
    ) -> int:
        """Migrate to ``target``: create missing replicas, drop stale ones.

        New replicas pull their payload from the nearest *pre-existing*
        replica (accounted as ``MIGRATION`` traffic); deallocation is
        free.  Returns the number of migrations performed.

        With ``skip_unreachable=True`` (the adaptive loop's degraded
        mode) any part of the migration that cannot currently be carried
        out — a drop or add at a failed site, or an add whose every
        source replica is dead or partitioned away — is silently
        deferred instead of raising, and the final convergence check is
        relaxed accordingly.  Without it, attempting to place a replica
        at a failed site raises :class:`SimulationError`.
        """
        self._check_storage_compatible(target.instance)
        current = self.scheme.matrix
        desired = target.matrix
        migrations = 0
        degraded = bool(self._failed) or self._unreachable is not None
        deferred = False
        ledger = current_ledger()
        # Drops first so capacity frees up before additions land.
        for site, obj in zip(*np.nonzero(current & ~desired)):
            site, obj = int(site), int(obj)
            if skip_unreachable and site in self._failed:
                deferred = True  # cannot instruct a dead site to drop
                if ledger.enabled:
                    ledger.record(
                        "defer", obj=obj, site=site,
                        reason="drop-at-failed-site",
                    )
                continue
            self.scheme.drop_replica(site, obj)
            if ledger.enabled:
                ledger.record("drop", obj=obj, site=site)
        for site, obj in zip(*np.nonzero(desired & ~current)):
            site, obj = int(site), int(obj)
            if site in self._failed:
                if skip_unreachable:
                    deferred = True
                    if ledger.enabled:
                        ledger.record(
                            "defer", obj=obj, site=site,
                            reason="add-at-failed-site",
                        )
                    continue
                raise SimulationError(
                    f"cannot place a replica at failed site {site}; "
                    "use skip_unreachable=True to defer it"
                )
            if degraded:
                source = self._alive_nearest(site, obj)
                if source is None:
                    if skip_unreachable:
                        deferred = True  # no live source right now
                        if ledger.enabled:
                            ledger.record(
                                "defer", obj=obj, site=site,
                                reason="no-reachable-source",
                            )
                        continue
                    raise SimulationError(
                        f"no reachable source replica for object {obj} "
                        f"to populate site {site}"
                    )
            else:
                source = int(self.scheme.nearest_sites(obj)[site])
            self.metrics.record_transfer(
                MIGRATION,
                site,
                obj,
                float(self.instance.sizes[obj]),
                float(self._cost[site, source]),
            )
            self.scheme.add_replica(site, obj)
            if ledger.enabled:
                ledger.record("add", obj=obj, site=site, source=source)
            self._valid[site, obj] = True  # migrated copies are current
            migrations += 1
        if not deferred and not np.array_equal(
            self.scheme.matrix, target.matrix
        ):
            raise SimulationError(
                "scheme realisation did not converge to the target"
            )
        return migrations

    def _check_storage_compatible(self, other: DRPInstance) -> None:
        """Same network/storage layout; patterns are allowed to differ.

        The adaptive loop (Section 5) realises schemes computed against
        drifted patterns on the same physical system.
        """
        base = self.instance
        if (
            other.num_sites != base.num_sites
            or other.num_objects != base.num_objects
            or not np.array_equal(other.cost, base.cost)
            or not np.array_equal(other.sizes, base.sizes)
            or not np.array_equal(other.capacities, base.capacities)
            or not np.array_equal(other.primaries, base.primaries)
        ):
            raise ValidationError(
                "target scheme's instance has a different network or "
                "storage layout"
            )


__all__ = ["ReplicaSystem"]
