"""The adaptive monitor loop of Section 5, end to end.

The paper's operational story: a monitor site collects per-object R/W
statistics every few minutes; when an object's pattern drifts past a
threshold, AGRA computes a new replication scheme quickly enough to be
realised on-line (object migration and deallocation), so the network stays
tuned between the nightly full redistributions.

:class:`AdaptiveReplicationLoop` simulates that loop over a sequence of
*epochs*.  Each epoch carries its own (possibly drifted) read/write
patterns; its traffic is replayed through :class:`~repro.sim.protocol.
ReplicaSystem`, and at the epoch boundary the monitor compares observed
totals against the patterns the current scheme was computed for,
triggering AGRA (optionally with a mini-GRA) on the objects that moved.
Scheme realisation costs (migrations) are accounted so the loop's benefit
can be judged net of its overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.agra.params import AGRAParams, PAPER_AGRA_PARAMS
from repro.algorithms.gra.params import GAParams, PAPER_PARAMS
from repro.core.cost import CostModel
from repro.core.incremental import IncrementalCostEvaluator
from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import ValidationError
from repro.obs.ledger import current_ledger
from repro.runtime.registry import default_registry
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.metrics import SimulationMetrics
from repro.sim.protocol import ReplicaSystem
from repro.utils.profiler import current_profiler
from repro.utils.rng import SeedLike, as_generator
from repro.utils.telemetry import current_sink
from repro.utils.tracing import current_tracer
from repro.workload.mutation import detect_changed_objects
from repro.workload.trace import generate_trace


@dataclass
class EpochRecord:
    """What happened during one monitored epoch."""

    epoch: int
    savings_percent: float
    measured_ntc: float
    changed_objects: List[int]
    adapted: bool
    migrations: int
    adaptation_seconds: float
    # Degraded-mode bookkeeping (defaults keep fault-free construction
    # sites unchanged).
    failed_sites: List[int] = field(default_factory=list)
    deferred_replicas: int = 0
    resumed_migrations: int = 0


@dataclass
class AdaptiveLoopReport:
    """Outcome of a full adaptive-loop simulation."""

    epochs: List[EpochRecord]
    metrics: SimulationMetrics
    final_scheme: ReplicationScheme

    @property
    def adaptations(self) -> int:
        return sum(1 for record in self.epochs if record.adapted)

    @property
    def total_migrations(self) -> int:
        return sum(record.migrations for record in self.epochs)

    def savings_series(self) -> List[float]:
        return [record.savings_percent for record in self.epochs]


class AdaptiveReplicationLoop:
    """Monitor-site loop: observe traffic, detect drift, adapt with AGRA.

    Parameters
    ----------
    instance:
        The patterns the initial scheme was computed for (the "night
        estimate").
    initial_scheme:
        The deployed scheme at epoch 0 (typically from GRA).
    threshold:
        Relative drift in an object's total reads or writes that triggers
        adaptation (Section 5's "threshold value"); 0.5 == 50%.
    mini_gra_generations:
        Refinement budget handed to AGRA per adaptation (paper evaluates
        0, 5 and 10).
    seed_matrices:
        Final population of the GRA run that produced ``initial_scheme``
        (improves AGRA's transcription).
    fault_plan:
        Optional :class:`~repro.sim.faults.FaultPlan` whose transition
        times are interpreted as **epoch numbers**: transitions due at
        or before epoch ``i`` apply at the start of epoch ``i``.  While
        sites are down, AGRA reallocation onto them is deferred and
        re-realised once they recover.
    use_evaluator:
        Keep one live :class:`~repro.core.incremental.
        IncrementalCostEvaluator` attached to the deployed scheme across
        all epochs (default): scheme realisations update it through the
        change listener and each epoch's drifted patterns are adopted
        with ``rebind_model`` (O(M*N)) instead of pricing the deployed
        scheme from scratch.  Results are bit-identical either way.
    """

    def __init__(
        self,
        instance: DRPInstance,
        initial_scheme: ReplicationScheme,
        threshold: float = 0.5,
        mini_gra_generations: int = 5,
        agra_params: AGRAParams = PAPER_AGRA_PARAMS,
        gra_params: GAParams = PAPER_PARAMS,
        seed_matrices: Sequence[np.ndarray] = (),
        rng: SeedLike = None,
        fault_plan: Optional[FaultPlan] = None,
        use_evaluator: bool = True,
    ) -> None:
        if threshold < 0:
            raise ValidationError(f"threshold must be >= 0, got {threshold}")
        self._assumed = instance
        self._threshold = threshold
        self._mini = mini_gra_generations
        self._agra_params = agra_params
        self._gra_params = gra_params
        self._seed_matrices = [
            np.asarray(m, dtype=bool).copy() for m in seed_matrices
        ]
        self._rng = as_generator(rng)
        self.system = ReplicaSystem(instance, initial_scheme)
        self._injector = (
            FaultInjector(fault_plan)
            if fault_plan is not None and not fault_plan.is_empty
            else None
        )
        # A target scheme whose realisation was cut short by failures;
        # retried at every epoch boundary until it fully lands.
        self._pending: Optional[ReplicationScheme] = None
        self._use_evaluator = use_evaluator
        self._evaluator: Optional[IncrementalCostEvaluator] = None

    # ------------------------------------------------------------------ #
    def run(self, epochs: Sequence[DRPInstance]) -> AdaptiveLoopReport:
        """Simulate ``epochs`` of traffic with adaptation at boundaries.

        Every epoch instance must share the assumed instance's network,
        sizes, capacities and primaries — only patterns may differ.
        """
        records: List[EpochRecord] = []
        sink = current_sink()
        profiler = current_profiler()
        for index, epoch_instance in enumerate(epochs):
            self._check_compatible(epoch_instance)
            # Apply fault transitions due at this epoch boundary, then
            # retry any adaptation that previous failures cut short.
            if self._injector is not None:
                self._injector.advance_to(float(index), self.system)
            resumed = self._resume_pending(index)
            # Replay this epoch's traffic against the deployed scheme.
            trace = generate_trace(epoch_instance, rng=self._rng)
            self.system.instance = epoch_instance  # costs use new patterns
            before_ntc = self.system.metrics.request_ntc
            self.system.replay(trace)
            measured = self.system.metrics.request_ntc - before_ntc

            model = CostModel(epoch_instance)
            current_cost = self._deployed_cost(model)
            savings = self._savings_percent(model, current_cost)

            # Monitor: compare observed patterns with the assumed ones.
            changed = detect_changed_objects(
                self._assumed, epoch_instance, threshold=self._threshold
            )
            adapted = False
            migrations = 0
            deferred = 0
            adaptation_seconds = 0.0
            if changed:
                agra = default_registry().create(
                    "agra",
                    seed=self._rng,
                    params=self._agra_params,
                    gra_params=self._gra_params,
                )
                with current_ledger().scope(
                    algorithm="agra",
                    epoch=index,
                    trigger="pattern-drift",
                    changed_objects=len(changed),
                ):
                    result = agra.adapt(
                        epoch_instance,
                        self.system.scheme,
                        changed_objects=changed,
                        seed_matrices=self._seed_matrices,
                        mini_gra_generations=self._mini,
                    )
                    adaptation_seconds = result.runtime_seconds
                    # Only realise schemes that actually improve the new
                    # cost.
                    if result.total_cost < current_cost:
                        migrations, deferred = self._realize(
                            result.scheme, index
                        )
                        adapted = True
                        self._assumed = epoch_instance

            records.append(
                EpochRecord(
                    epoch=index,
                    savings_percent=savings,
                    measured_ntc=measured,
                    changed_objects=changed,
                    adapted=adapted,
                    migrations=migrations,
                    adaptation_seconds=adaptation_seconds,
                    failed_sites=sorted(self.system.failed_sites),
                    deferred_replicas=deferred,
                    resumed_migrations=resumed,
                )
            )
            profiler.tick()
            if sink.enabled:
                # One snapshot per epoch gives the JSONL exporter the
                # per-epoch time series the paper's Fig. 4 is about; the
                # OpenMetrics file ends up holding the latest epoch.
                sink.set_gauge("repro_adaptive_epoch", index)
                sink.set_gauge("repro_adaptive_epoch_ntc", measured)
                sink.set_gauge("repro_adaptive_savings_percent", savings)
                sink.set_gauge(
                    "repro_adaptive_changed_objects", len(changed)
                )
                sink.set_gauge("repro_adaptive_adapted", int(adapted))
                sink.set_gauge("repro_adaptive_migrations", migrations)
                sink.set_gauge(
                    "repro_adaptive_deferred_replicas", deferred
                )
                sink.set_gauge(
                    "repro_adaptive_resumed_migrations", resumed
                )
                sink.set_gauge(
                    "repro_adaptive_failed_sites",
                    len(self.system.failed_sites),
                )
                self.system.metrics.publish(sink)
                sink.snapshot(tick=index)
        return AdaptiveLoopReport(
            epochs=records,
            metrics=self.system.metrics,
            final_scheme=self.system.scheme.copy(),
        )

    # ------------------------------------------------------------------ #
    def _deployed_cost(self, model: CostModel) -> float:
        """``D`` of the deployed scheme under this epoch's patterns.

        With the live evaluator the deployed scheme's per-object terms
        are already maintained; adopting the epoch's model is one
        ``rebind_model`` (the network is fixed across epochs — only
        patterns drift).  Without it, a full recompute.  Both totals are
        bit-identical.
        """
        if not self._use_evaluator:
            return model.total_cost(self.system.scheme)
        if self._evaluator is None:
            # The evaluator must be born against the scheme's own
            # instance; the epoch's drifted patterns are adopted right
            # after through the rebind below.
            self._evaluator = IncrementalCostEvaluator(
                CostModel(self.system.scheme.instance),
                self.system.scheme,
            )
        self._evaluator.rebind_model(model)
        return self._evaluator.total_cost()

    def _savings_percent(self, model: CostModel, cost: float) -> float:
        """``CostModel.savings_percent`` from an already-known total."""
        d_prime = model.d_prime()
        if d_prime == 0.0:
            return 0.0 if cost == 0.0 else float("-inf")
        return 100.0 * (d_prime - cost) / d_prime

    def _realize(
        self, target: ReplicationScheme, epoch: int
    ) -> "tuple[int, int]":
        """Realise ``target``, deferring what failures make impossible.

        Returns ``(migrations, deferred_replicas)``.  A partial
        realisation parks the target in ``self._pending`` for retry at
        later epoch boundaries.
        """
        degraded = bool(self.system.failed_sites) or self.system.has_link_faults
        migrations = self.system.realize_scheme(
            target, skip_unreachable=degraded
        )
        deferred = int(
            np.sum(self.system.scheme.matrix != target.matrix)
        )
        if deferred:
            self._pending = target.copy()
            current_tracer().event(
                "adaptive.defer",
                epoch=epoch,
                deferred_replicas=deferred,
                failed_sites=sorted(self.system.failed_sites),
            )
        else:
            self._pending = None
        return migrations, deferred

    def _resume_pending(self, epoch: int) -> int:
        """Retry a deferred realisation; returns migrations performed."""
        if self._pending is None:
            return 0
        ledger = current_ledger()
        with ledger.scope(
            algorithm="agra", epoch=epoch, trigger="fault-recovery"
        ):
            migrations = self.system.realize_scheme(
                self._pending, skip_unreachable=True
            )
        if np.array_equal(self.system.scheme.matrix, self._pending.matrix):
            self._pending = None
        if migrations:
            current_tracer().event(
                "adaptive.resume",
                epoch=epoch,
                migrations=migrations,
                complete=self._pending is None,
            )
            if ledger.enabled:
                ledger.record(
                    "resume",
                    epoch=epoch,
                    migrations=migrations,
                    complete=self._pending is None,
                )
        return migrations

    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: DRPInstance) -> None:
        base = self._assumed
        if (
            other.num_sites != base.num_sites
            or other.num_objects != base.num_objects
            or not np.array_equal(other.cost, base.cost)
            or not np.array_equal(other.sizes, base.sizes)
            or not np.array_equal(other.capacities, base.capacities)
            or not np.array_equal(other.primaries, base.primaries)
        ):
            raise ValidationError(
                "epoch instance must differ from the assumed instance only "
                "in read/write patterns"
            )


__all__ = ["EpochRecord", "AdaptiveLoopReport", "AdaptiveReplicationLoop"]
