"""The adaptive monitor loop of Section 5, end to end.

The paper's operational story: a monitor site collects per-object R/W
statistics every few minutes; when an object's pattern drifts past a
threshold, AGRA computes a new replication scheme quickly enough to be
realised on-line (object migration and deallocation), so the network stays
tuned between the nightly full redistributions.

:class:`AdaptiveReplicationLoop` simulates that loop over a sequence of
*epochs*.  Each epoch carries its own (possibly drifted) read/write
patterns; its traffic is replayed through :class:`~repro.sim.protocol.
ReplicaSystem`, and at the epoch boundary the monitor compares observed
totals against the patterns the current scheme was computed for,
triggering AGRA (optionally with a mini-GRA) on the objects that moved.
Scheme realisation costs (migrations) are accounted so the loop's benefit
can be judged net of its overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.agra.engine import AGRA
from repro.algorithms.agra.params import AGRAParams, PAPER_AGRA_PARAMS
from repro.algorithms.gra.params import GAParams, PAPER_PARAMS
from repro.core.cost import CostModel
from repro.core.problem import DRPInstance
from repro.core.scheme import ReplicationScheme
from repro.errors import ValidationError
from repro.sim.metrics import SimulationMetrics
from repro.sim.protocol import ReplicaSystem
from repro.utils.rng import SeedLike, as_generator
from repro.workload.mutation import detect_changed_objects
from repro.workload.trace import generate_trace


@dataclass
class EpochRecord:
    """What happened during one monitored epoch."""

    epoch: int
    savings_percent: float
    measured_ntc: float
    changed_objects: List[int]
    adapted: bool
    migrations: int
    adaptation_seconds: float


@dataclass
class AdaptiveLoopReport:
    """Outcome of a full adaptive-loop simulation."""

    epochs: List[EpochRecord]
    metrics: SimulationMetrics
    final_scheme: ReplicationScheme

    @property
    def adaptations(self) -> int:
        return sum(1 for record in self.epochs if record.adapted)

    @property
    def total_migrations(self) -> int:
        return sum(record.migrations for record in self.epochs)

    def savings_series(self) -> List[float]:
        return [record.savings_percent for record in self.epochs]


class AdaptiveReplicationLoop:
    """Monitor-site loop: observe traffic, detect drift, adapt with AGRA.

    Parameters
    ----------
    instance:
        The patterns the initial scheme was computed for (the "night
        estimate").
    initial_scheme:
        The deployed scheme at epoch 0 (typically from GRA).
    threshold:
        Relative drift in an object's total reads or writes that triggers
        adaptation (Section 5's "threshold value"); 0.5 == 50%.
    mini_gra_generations:
        Refinement budget handed to AGRA per adaptation (paper evaluates
        0, 5 and 10).
    seed_matrices:
        Final population of the GRA run that produced ``initial_scheme``
        (improves AGRA's transcription).
    """

    def __init__(
        self,
        instance: DRPInstance,
        initial_scheme: ReplicationScheme,
        threshold: float = 0.5,
        mini_gra_generations: int = 5,
        agra_params: AGRAParams = PAPER_AGRA_PARAMS,
        gra_params: GAParams = PAPER_PARAMS,
        seed_matrices: Sequence[np.ndarray] = (),
        rng: SeedLike = None,
    ) -> None:
        if threshold < 0:
            raise ValidationError(f"threshold must be >= 0, got {threshold}")
        self._assumed = instance
        self._threshold = threshold
        self._mini = mini_gra_generations
        self._agra_params = agra_params
        self._gra_params = gra_params
        self._seed_matrices = [
            np.asarray(m, dtype=bool).copy() for m in seed_matrices
        ]
        self._rng = as_generator(rng)
        self.system = ReplicaSystem(instance, initial_scheme)

    # ------------------------------------------------------------------ #
    def run(self, epochs: Sequence[DRPInstance]) -> AdaptiveLoopReport:
        """Simulate ``epochs`` of traffic with adaptation at boundaries.

        Every epoch instance must share the assumed instance's network,
        sizes, capacities and primaries — only patterns may differ.
        """
        records: List[EpochRecord] = []
        for index, epoch_instance in enumerate(epochs):
            self._check_compatible(epoch_instance)
            # Replay this epoch's traffic against the deployed scheme.
            trace = generate_trace(epoch_instance, rng=self._rng)
            self.system.instance = epoch_instance  # costs use new patterns
            before_ntc = self.system.metrics.request_ntc
            self.system.replay(trace)
            measured = self.system.metrics.request_ntc - before_ntc

            model = CostModel(epoch_instance)
            savings = model.savings_percent(self.system.scheme)

            # Monitor: compare observed patterns with the assumed ones.
            changed = detect_changed_objects(
                self._assumed, epoch_instance, threshold=self._threshold
            )
            adapted = False
            migrations = 0
            adaptation_seconds = 0.0
            if changed:
                agra = AGRA(
                    params=self._agra_params,
                    gra_params=self._gra_params,
                    rng=self._rng,
                )
                result = agra.adapt(
                    epoch_instance,
                    self.system.scheme,
                    changed_objects=changed,
                    seed_matrices=self._seed_matrices,
                    mini_gra_generations=self._mini,
                )
                adaptation_seconds = result.runtime_seconds
                # Only realise schemes that actually improve the new cost.
                if result.total_cost < model.total_cost(self.system.scheme):
                    migrations = self.system.realize_scheme(result.scheme)
                    adapted = True
                    self._assumed = epoch_instance

            records.append(
                EpochRecord(
                    epoch=index,
                    savings_percent=savings,
                    measured_ntc=measured,
                    changed_objects=changed,
                    adapted=adapted,
                    migrations=migrations,
                    adaptation_seconds=adaptation_seconds,
                )
            )
        return AdaptiveLoopReport(
            epochs=records,
            metrics=self.system.metrics,
            final_scheme=self.system.scheme.copy(),
        )

    # ------------------------------------------------------------------ #
    def _check_compatible(self, other: DRPInstance) -> None:
        base = self._assumed
        if (
            other.num_sites != base.num_sites
            or other.num_objects != base.num_objects
            or not np.array_equal(other.cost, base.cost)
            or not np.array_equal(other.sizes, base.sizes)
            or not np.array_equal(other.capacities, base.capacities)
            or not np.array_equal(other.primaries, base.primaries)
        ):
            raise ValidationError(
                "epoch instance must differ from the assumed instance only "
                "in read/write patterns"
            )


__all__ = ["EpochRecord", "AdaptiveLoopReport", "AdaptiveReplicationLoop"]
