"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input failed structural validation (shape, range, type)."""


class CapacityError(ReproError):
    """A replication scheme violates a site's storage capacity."""

    def __init__(self, site: int, used: int, capacity: int) -> None:
        self.site = site
        self.used = used
        self.capacity = capacity
        super().__init__(
            f"site {site} stores {used} units but its capacity is {capacity}"
        )


class PrimaryCopyError(ReproError):
    """A replication scheme drops (or tries to drop) a primary copy."""

    def __init__(self, site: int, obj: int) -> None:
        self.site = site
        self.obj = obj
        super().__init__(
            f"object {obj} must keep its primary copy at site {site}"
        )


class StaleEvaluatorError(ReproError):
    """An incremental-evaluator move was applied against a changed scheme.

    Raised by :meth:`repro.core.incremental.IncrementalCostEvaluator.apply`
    when the scheme mutated (directly or through another move) after the
    move's delta was priced, so applying it would silently account costs
    against a state that no longer exists.  Re-price the move against the
    current state instead.
    """

    def __init__(
        self,
        move_version: "int | None" = None,
        current_version: "int | None" = None,
        message: "str | None" = None,
    ) -> None:
        self.move_version = move_version
        self.current_version = current_version
        if message is None:
            message = (
                f"move was priced against evaluator state "
                f"v{move_version} but the scheme is now at "
                f"v{current_version}; re-price the move"
            )
        super().__init__(message)


class InfeasibleProblemError(ReproError):
    """The DRP instance admits no feasible replication scheme.

    This happens when some primary copy does not fit in its primary site,
    i.e. even the mandatory primary-only allocation violates capacity.
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to produce a usable result."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class TopologyError(ReproError):
    """A network topology is malformed (disconnected, bad link, ...)."""


class ProtocolError(ReproError):
    """A distributed-protocol emulation violated its own rules."""


class FaultPlanError(ValidationError):
    """A fault-injection plan is malformed (bad window, site, rate...)."""


class RetryExhaustedError(ProtocolError):
    """A protocol operation gave up after its configured retry budget.

    Carries the operation name, the peer it was addressed to and the
    number of attempts made, so callers can distinguish a dead peer from
    a hopelessly lossy link without parsing the message.
    """

    def __init__(self, operation: str, peer: int, attempts: int) -> None:
        self.operation = operation
        self.peer = peer
        self.attempts = attempts
        super().__init__(
            f"{operation} to site {peer} failed after {attempts} attempts"
        )
